// Wire protocol of the simulated crowd sensing system (paper Fig. 1 /
// Algorithm 2, distributed form):
//
//   server --TaskAnnounce{round, lambda2, objects}--> every user
//   user   --Report{round, user, (object, value)*}--> server      (one upload)
//   server --ResultPublish{round, truths}--> every user
//
// The protocol is deliberately non-interactive per user: one downlink and one
// uplink message — the efficiency property §5.3 relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serialize.h"
#include "net/transport.h"

namespace dptd::crowd {

enum class MessageType : std::uint32_t {
  kTaskAnnounce = 1,
  kReport = 2,
  kResultPublish = 3,
  /// Coordinator -> shard sufficient-statistics RPC (dist/ subsystem).
  kShardRequest = 4,
  /// Shard -> coordinator RPC response.
  kShardResponse = 5,
  /// Orderly-exit request for a remote shard process (empty payload): the
  /// dist::ShardNode sets shutdown_requested() and its service loop returns.
  /// Fire-and-forget — no response, no exactly-once bookkeeping.
  kShutdown = 6,
  /// A categorical upload: same leading round/user varints as kReport (so
  /// Report::peek_header routes both), but claims carry label ids instead of
  /// perturbed readings.
  kLabelReport = 7,
};

struct TaskAnnounce {
  std::uint64_t round = 0;
  double lambda2 = 1.0;       ///< server-released hyper-parameter
  std::uint64_t num_objects = 0;

  std::vector<std::uint8_t> encode() const;
  static TaskAnnounce decode(std::span<const std::uint8_t> bytes);
};

/// The routing prefix of an encoded Report, readable without decoding the
/// claim arrays. This is what lets the ingestion front end stay O(1) per
/// report: the network thread peeks round + user id to route, and the full
/// (allocating) decode happens on the owning shard's worker thread.
struct ReportHeader {
  std::uint64_t round = 0;
  std::uint64_t user_id = 0;
};

struct Report {
  std::uint64_t round = 0;
  std::uint64_t user_id = 0;
  std::vector<std::uint64_t> objects;  ///< parallel arrays
  std::vector<double> values;          ///< perturbed readings

  std::vector<std::uint8_t> encode() const;
  static Report decode(std::span<const std::uint8_t> bytes);
  /// Reads only the leading round/user varints; nullopt when even the header
  /// is undecodable. A successful peek does NOT validate the claim arrays.
  static std::optional<ReportHeader> peek_header(
      std::span<const std::uint8_t> bytes);
};

/// Categorical upload: (object, label) claims. The leading two varints are
/// identical to Report's, so the O(1) routing peek (Report::peek_header)
/// works unchanged on both report kinds — the ingestion front end never
/// needs to know which one it is holding.
struct LabelReport {
  std::uint64_t round = 0;
  std::uint64_t user_id = 0;
  std::vector<std::uint64_t> objects;  ///< parallel arrays
  std::vector<std::uint32_t> labels;   ///< client-side k-RR output

  std::vector<std::uint8_t> encode() const;
  static LabelReport decode(std::span<const std::uint8_t> bytes);
};

struct ResultPublish {
  std::uint64_t round = 0;
  std::vector<double> truths;

  std::vector<std::uint8_t> encode() const;
  static ResultPublish decode(std::span<const std::uint8_t> bytes);
};

/// Framing of every kShardRequest/kShardResponse payload: a correlation id, a
/// shard-statistics opcode (dist::ShardOp, kept opaque at this layer), and the
/// op-specific body. Requests and their responses carry the SAME op_id, which
/// is what makes the coordinator's timeout-and-resend loop safe: a resent
/// request re-executes (or replays) under the old id, and a late original
/// response is still accepted.
struct StatsEnvelope {
  std::uint64_t op_id = 0;
  std::uint8_t op = 0;
  std::vector<std::uint8_t> body;

  std::vector<std::uint8_t> encode() const;
  static StatsEnvelope decode(std::span<const std::uint8_t> bytes);
};

/// Wraps an encoded payload in a routed message.
net::Message make_message(net::NodeId source, net::NodeId destination,
                          MessageType type, std::vector<std::uint8_t> payload);

}  // namespace dptd::crowd
