#include "crowd/label_client.h"

#include "categorical/randomized_response.h"
#include "common/check.h"
#include "common/distributions.h"
#include "common/rng.h"

namespace dptd::crowd {

LabelReport make_label_report(std::uint64_t round, net::NodeId user_id,
                              std::span<const std::uint64_t> objects,
                              std::span<const categorical::Label> truths,
                              std::size_t num_labels, double keep_probability,
                              std::uint64_t seed) {
  DPTD_REQUIRE(objects.size() == truths.size(),
               "make_label_report: objects/truths size mismatch");
  LabelReport report;
  report.round = round;
  report.user_id = user_id;
  report.objects.assign(objects.begin(), objects.end());
  report.labels.reserve(truths.size());
  if (keep_probability >= 1.0) {
    report.labels.assign(truths.begin(), truths.end());
    return report;
  }
  Rng rng(derive_seed(seed, round, user_id));
  for (categorical::Label truth : truths) {
    report.labels.push_back(
        categorical::krr_perturb(truth, keep_probability, num_labels, rng));
  }
  return report;
}

LabelDevice::LabelDevice(LabelDeviceConfig config,
                         std::vector<std::uint64_t> objects,
                         std::vector<categorical::Label> labels,
                         net::Network& network)
    : config_(config),
      objects_(std::move(objects)),
      labels_(std::move(labels)),
      network_(&network) {
  DPTD_REQUIRE(objects_.size() == labels_.size(),
               "LabelDevice: objects/labels size mismatch");
  DPTD_REQUIRE(config_.num_labels >= 2, "LabelDevice: num_labels must be >= 2");
  DPTD_REQUIRE(config_.think_time_seconds >= 0.0,
               "LabelDevice: negative think time");
  network_->attach(config_.id, *this);
}

void LabelDevice::retask(std::vector<std::uint64_t> objects,
                         std::vector<categorical::Label> labels,
                         std::uint64_t seed) {
  DPTD_REQUIRE(objects.size() == labels.size(),
               "LabelDevice: objects/labels size mismatch");
  objects_ = std::move(objects);
  labels_ = std::move(labels);
  config_.seed = seed;
  published_truths_.clear();
}

void LabelDevice::on_message(const net::Message& message) {
  switch (static_cast<MessageType>(message.type)) {
    case MessageType::kTaskAnnounce:
      handle_task(TaskAnnounce::decode(message.payload));
      break;
    case MessageType::kResultPublish: {
      const ResultPublish publish = ResultPublish::decode(message.payload);
      published_truths_ = publish.truths;
      break;
    }
    case MessageType::kReport:
    case MessageType::kLabelReport:
    case MessageType::kShardRequest:
    case MessageType::kShardResponse:
    case MessageType::kShutdown:
      break;  // never addressed to a device; ignore misrouted traffic
  }
}

void LabelDevice::handle_task(const TaskAnnounce& task) {
  if (config_.behavior == DeviceBehavior::kDropout) return;

  LabelReport report;
  switch (config_.behavior) {
    case DeviceBehavior::kHonest:
    case DeviceBehavior::kDuplicator: {
      const double keep =
          config_.epsilon > 0.0
              ? categorical::krr_keep_probability(config_.epsilon,
                                                  config_.num_labels)
              : 1.0;
      report = make_label_report(task.round, config_.id, objects_, labels_,
                                 config_.num_labels, keep, config_.seed);
      break;
    }
    case DeviceBehavior::kConstantLiar:
      report.round = task.round;
      report.user_id = config_.id;
      report.objects = objects_;
      report.labels.assign(objects_.size(), config_.constant_label);
      break;
    case DeviceBehavior::kSpammer: {
      report.round = task.round;
      report.user_id = config_.id;
      report.objects = objects_;
      report.labels.reserve(objects_.size());
      // The spam stream shares the honest keying so adversarial rounds are
      // just as replayable as honest ones.
      Rng rng(derive_seed(config_.seed, task.round, config_.id));
      for (std::size_t i = 0; i < objects_.size(); ++i) {
        report.labels.push_back(static_cast<categorical::Label>(
            uniform_index(rng, config_.num_labels)));
      }
      break;
    }
    case DeviceBehavior::kDropout:
      return;  // unreachable
  }

  const std::size_t copies =
      config_.behavior == DeviceBehavior::kDuplicator ? 2 : 1;
  for (std::size_t c = 0; c < copies; ++c) {
    net::Message msg =
        make_message(config_.id, config_.server_id, MessageType::kLabelReport,
                     report.encode());
    network_->simulator().schedule(
        config_.think_time_seconds,
        [network = network_, m = std::move(msg)]() mutable {
          network->send(std::move(m));
        });
  }
}

}  // namespace dptd::crowd
