#include "crowd/sharded_server.h"

#include "common/check.h"
#include "common/logging.h"
#include "common/serialize.h"

namespace dptd::crowd {

ShardedServer::ShardedServer(ServerConfig config,
                             std::unique_ptr<truth::TruthDiscovery> method,
                             net::Network& network)
    : config_(config), method_(std::move(method)), network_(&network) {
  DPTD_REQUIRE(method_ != nullptr, "ShardedServer: null truth-discovery method");
  DPTD_REQUIRE(config_.lambda2 > 0.0, "ShardedServer: lambda2 must be positive");
  DPTD_REQUIRE(config_.collection_window_seconds > 0.0,
               "ShardedServer: collection window must be positive");
  DPTD_REQUIRE(config_.num_objects > 0,
               "ShardedServer: num_objects must be positive");
  DPTD_REQUIRE(config_.num_shards > 0,
               "ShardedServer: num_shards must be positive");
  DPTD_REQUIRE(config_.stats_block_size > 0,
               "ShardedServer: stats_block_size must be positive");
  network_->attach(config_.id, *this);
}

void ShardedServer::start_round(std::uint64_t round,
                                const std::vector<net::NodeId>& user_ids) {
  DPTD_REQUIRE(!round_open_, "ShardedServer: a round is already open");
  DPTD_REQUIRE(!user_ids.empty(), "ShardedServer: no participants");
  current_round_ = round;
  round_open_ = true;
  participants_ = user_ids;
  plan_ = data::ShardPlan::create(participants_.size(), config_.num_shards,
                                  config_.stats_block_size);
  builders_.clear();
  builders_.reserve(plan_.num_shards);
  for (std::size_t i = 0; i < plan_.num_shards; ++i) {
    builders_.emplace_back(plan_.shard_num_users(i), config_.num_objects);
  }
  shard_stats_.assign(plan_.num_shards, ShardIngestStats{});
  distinct_reporters_ = 0;
  unroutable_rejected_ = 0;

  TaskAnnounce task;
  task.round = round;
  task.lambda2 = config_.lambda2;
  task.num_objects = config_.num_objects;
  const std::vector<std::uint8_t> payload = task.encode();
  for (net::NodeId user : user_ids) {
    network_->send(make_message(config_.id, user, MessageType::kTaskAnnounce,
                                payload));
  }

  network_->simulator().schedule(config_.collection_window_seconds,
                                 [this] { finish_round(); });
}

void ShardedServer::on_message(const net::Message& message) {
  if (static_cast<MessageType>(message.type) != MessageType::kReport) return;
  if (!round_open_) return;  // straggler after deadline
  Report report;
  try {
    report = Report::decode(message.payload);
  } catch (const DecodeError& error) {
    DPTD_LOG_WARN << "round " << current_round_
                  << ": dropping undecodable report (" << error.what() << ")";
    ++unroutable_rejected_;
    return;
  }
  if (report.round != current_round_) return;
  ingest_report(report);
  if (distinct_reporters_ == participants_.size()) {
    // Every *distinct* participant answered across all shards; no need to
    // wait out the window (duplicate re-sends never inflate this count). The
    // deadline event still fires but becomes a no-op.
    finish_round();
  }
}

void ShardedServer::ingest_report(const Report& report) {
  // A byzantine user id cannot be routed to any shard: drop the report at
  // the coordinator, count it, and keep collecting.
  if (report.user_id >= participants_.size()) {
    DPTD_LOG_WARN << "round " << current_round_
                  << ": dropping report from unknown user id "
                  << report.user_id;
    ++unroutable_rejected_;
    return;
  }
  const auto user = static_cast<std::size_t>(report.user_id);
  // Consistent routing: the same user always lands on the same shard, so a
  // duplicate re-send is detected by that shard's own dedup state.
  const std::size_t shard = plan_.shard_of_user(user);
  const std::size_t local = user - plan_.user_begin(shard);
  data::ObservationMatrixBuilder& builder = builders_[shard];
  ShardIngestStats& stats = shard_stats_[shard];
  if (builder.has_row(local)) {
    ++stats.duplicates_ignored;
    return;
  }

  if (ingest_report_claims(builder, local, report, config_.num_objects)) {
    DPTD_LOG_WARN << "round " << current_round_ << ": user " << user
                  << " sent malformed claims, ingested the valid subset on"
                  << " shard " << shard;
    ++stats.malformed_reports;
  }
  ++stats.reports_received;
  ++distinct_reporters_;
}

void ShardedServer::finish_round() {
  if (!round_open_) return;
  round_open_ = false;

  RoundOutcome outcome;
  outcome.round = current_round_;
  outcome.reports_expected = participants_.size();
  outcome.reports_received = distinct_reporters_;
  outcome.reports_rejected = unroutable_rejected_;
  outcome.shard_stats = shard_stats_;
  for (const ShardIngestStats& stats : shard_stats_) {
    outcome.duplicates_ignored += stats.duplicates_ignored;
  }

  if (distinct_reporters_ == 0) {
    DPTD_LOG_WARN << "round " << current_round_ << ": no reports received";
    outcomes_.push_back(std::move(outcome));
    return;
  }

  // Each shard's sub-matrix was assembled incrementally as reports arrived;
  // the deadline only finalizes the K builders and hands the sharded view to
  // the coordinator's reduction (the round-close tail is shared with
  // CrowdServer, which is what keeps the two servers bitwise identical).
  std::vector<data::ObservationMatrix> shards;
  shards.reserve(builders_.size());
  for (data::ObservationMatrixBuilder& builder : builders_) {
    shards.push_back(builder.finalize());
  }
  const data::ShardedMatrix matrix = data::ShardedMatrix::from_shards(
      plan_, std::move(shards), config_.num_objects);
  aggregate_and_publish(config_, *method_, *network_, current_round_,
                        participants_, matrix, last_result_,
                        have_last_result_, outcome);
  outcomes_.push_back(std::move(outcome));
}

}  // namespace dptd::crowd
