#include "crowd/sharded_server.h"

#include "common/check.h"
#include "common/logging.h"
#include "common/serialize.h"

namespace dptd::crowd {

ShardedServer::ShardedServer(ServerConfig config,
                             std::unique_ptr<truth::TruthDiscovery> method,
                             net::Transport& network)
    : config_(config), method_(std::move(method)), network_(&network) {
  DPTD_REQUIRE(method_ != nullptr, "ShardedServer: null truth-discovery method");
  DPTD_REQUIRE(config_.lambda2 > 0.0, "ShardedServer: lambda2 must be positive");
  DPTD_REQUIRE(config_.collection_window_seconds > 0.0,
               "ShardedServer: collection window must be positive");
  DPTD_REQUIRE(config_.num_objects > 0,
               "ShardedServer: num_objects must be positive");
  DPTD_REQUIRE(config_.num_shards > 0,
               "ShardedServer: num_shards must be positive");
  DPTD_REQUIRE(config_.stats_block_size > 0,
               "ShardedServer: stats_block_size must be positive");
  if (config_.labels.enabled()) {
    DPTD_REQUIRE(
        config_.labels.rr_keep_probability <= 1.0 &&
            config_.labels.rr_keep_probability >
                1.0 / static_cast<double>(config_.labels.num_labels),
        "ShardedServer: rr_keep_probability must be in (1/num_labels, 1]");
  }
  network_->attach(config_.id, *this);
}

void ShardedServer::set_num_shards(std::size_t num_shards) {
  DPTD_REQUIRE(num_shards > 0, "ShardedServer: num_shards must be positive");
  DPTD_REQUIRE(!round_open_,
               "ShardedServer: cannot resize shards mid-round");
  config_.num_shards = num_shards;
}

void ShardedServer::start_round(std::uint64_t round,
                                const std::vector<net::NodeId>& user_ids) {
  DPTD_REQUIRE(!round_open_, "ShardedServer: a round is already open");
  DPTD_REQUIRE(!user_ids.empty(), "ShardedServer: no participants");
  current_round_ = round;
  round_open_ = true;
  participants_ = user_ids;
  index_.build(participants_);
  plan_ = data::ShardPlan::create(participants_.size(), config_.num_shards,
                                  config_.stats_block_size);
  if (config_.ingest_threads > 0) {
    if (!pipeline_) {
      IngestPipelineConfig pipeline_config;
      pipeline_config.num_workers = config_.ingest_threads;
      pipeline_.emplace(pipeline_config);
    }
    pipeline_->begin_round(plan_, config_.num_objects, round, config_.labels);
    submitted_rows_.assign(participants_.size(), 0);
    producer_distinct_ = 0;
  } else {
    builders_.clear();
    builders_.reserve(plan_.num_shards);
    for (std::size_t i = 0; i < plan_.num_shards; ++i) {
      builders_.emplace_back(plan_.shard_num_users(i), config_.num_objects);
    }
    shard_stats_.assign(plan_.num_shards, ShardIngestStats{});
  }
  distinct_reporters_ = 0;
  unroutable_rejected_ = 0;

  TaskAnnounce task;
  task.round = round;
  task.lambda2 = config_.lambda2;
  task.num_objects = config_.num_objects;
  const std::vector<std::uint8_t> payload = task.encode();
  for (net::NodeId user : user_ids) {
    network_->send(make_message(config_.id, user, MessageType::kTaskAnnounce,
                                payload));
  }

  network_->schedule(config_.collection_window_seconds,
                                 [this] { finish_round(); });
}

void ShardedServer::on_message(const net::Message& message) {
  const MessageType type = static_cast<MessageType>(message.type);
  if (type != MessageType::kReport && type != MessageType::kLabelReport) {
    return;
  }
  if (!round_open_) return;  // straggler after deadline
  // Wrong-kind uploads (continuous report in a categorical round or vice
  // versa) are protocol violations, dropped at the coordinator — in pipelined
  // mode this keeps the type check off the workers: a routed item is always
  // of the round's kind.
  const bool is_label = type == MessageType::kLabelReport;
  if (is_label != config_.labels.enabled()) {
    DPTD_LOG_WARN << "round " << current_round_ << ": dropping "
                  << (is_label ? "label" : "continuous")
                  << " report in a "
                  << (config_.labels.enabled() ? "categorical" : "continuous")
                  << " round";
    ++unroutable_rejected_;
    return;
  }

  if (pipeline_) {
    // Pipelined ingestion: the network thread only routes. One O(1) header
    // peek resolves round + user (LabelReport shares Report's leading
    // varints, so the same peek covers both kinds); the full decode happens
    // on the owning shard's worker.
    const std::optional<ReportHeader> header =
        Report::peek_header(message.payload);
    if (!header) {
      DPTD_LOG_WARN << "round " << current_round_
                    << ": dropping report with undecodable header";
      ++unroutable_rejected_;
      return;
    }
    if (header->round != current_round_) return;
    const std::optional<std::size_t> row = index_.row_of(header->user_id);
    if (!row) {
      DPTD_LOG_WARN << "round " << current_round_
                    << ": dropping report from unknown user id "
                    << header->user_id;
      ++unroutable_rejected_;
      return;
    }
    pipeline_->submit(*row, message.payload, is_label);
    // Early close: only a row's FIRST submission can complete the roster
    // (re-sends are guaranteed duplicates on the owning shard), so the exact
    // check — a drain barrier, then the workers' distinct count — runs at
    // most once per round, on the message that covers the last missing user.
    // Duplicate floods never re-trigger the barrier. If a report's body
    // later fails to decode on its worker, the distinct count stays short
    // and the round simply waits for the deadline (a valid re-send of such
    // a report still ingests; it just cannot re-arm the early close).
    if (!submitted_rows_[*row]) {
      submitted_rows_[*row] = 1;
      if (++producer_distinct_ == participants_.size()) {
        pipeline_->drain();
        if (pipeline_->distinct_reporters() == participants_.size()) {
          finish_round();
        }
      }
    }
    return;
  }

  if (is_label) {
    LabelReport report;
    try {
      report = LabelReport::decode(message.payload);
    } catch (const DecodeError& error) {
      DPTD_LOG_WARN << "round " << current_round_
                    << ": dropping undecodable label report (" << error.what()
                    << ")";
      ++unroutable_rejected_;
      return;
    }
    if (report.round != current_round_) return;
    ingest_label_report_serial(report);
  } else {
    Report report;
    try {
      report = Report::decode(message.payload);
    } catch (const DecodeError& error) {
      DPTD_LOG_WARN << "round " << current_round_
                    << ": dropping undecodable report (" << error.what()
                    << ")";
      ++unroutable_rejected_;
      return;
    }
    if (report.round != current_round_) return;
    ingest_report_serial(report);
  }
  if (distinct_reporters_ == participants_.size()) {
    // Every *distinct* participant answered across all shards; no need to
    // wait out the window (duplicate re-sends never inflate this count). The
    // deadline event still fires but becomes a no-op.
    finish_round();
  }
}

void ShardedServer::ingest_report_serial(const Report& report) {
  // A byzantine user id cannot be routed to any shard: drop the report at
  // the coordinator, count it, and keep collecting.
  const std::optional<std::size_t> row = index_.row_of(report.user_id);
  if (!row) {
    DPTD_LOG_WARN << "round " << current_round_
                  << ": dropping report from unknown user id "
                  << report.user_id;
    ++unroutable_rejected_;
    return;
  }
  const std::size_t user = *row;
  // Consistent routing: the same user always lands on the same shard, so a
  // duplicate re-send is detected by that shard's own dedup state.
  const std::size_t shard = plan_.shard_of_user(user);
  const std::size_t local = user - plan_.user_begin(shard);
  data::ObservationMatrixBuilder& builder = builders_[shard];
  ShardIngestStats& stats = shard_stats_[shard];
  if (builder.has_row(local)) {
    ++stats.duplicates_ignored;
    return;
  }

  if (ingest_report_claims(builder, local, report, config_.num_objects)) {
    DPTD_LOG_WARN << "round " << current_round_ << ": user " << report.user_id
                  << " sent malformed claims, ingested the valid subset on"
                  << " shard " << shard;
    ++stats.malformed_reports;
  }
  ++stats.reports_received;
  ++distinct_reporters_;
}

void ShardedServer::ingest_label_report_serial(const LabelReport& report) {
  const std::optional<std::size_t> row = index_.row_of(report.user_id);
  if (!row) {
    DPTD_LOG_WARN << "round " << current_round_
                  << ": dropping label report from unknown user id "
                  << report.user_id;
    ++unroutable_rejected_;
    return;
  }
  const std::size_t user = *row;
  const std::size_t shard = plan_.shard_of_user(user);
  const std::size_t local = user - plan_.user_begin(shard);
  data::ObservationMatrixBuilder& builder = builders_[shard];
  ShardIngestStats& stats = shard_stats_[shard];
  if (builder.has_row(local)) {
    ++stats.duplicates_ignored;
    return;
  }

  // The sampling stream is keyed by the GLOBAL row (shard base + local), so
  // the ingested bits are identical to CrowdServer's for every shard count.
  const LabelIngestOutcome outcome =
      ingest_label_claims(builder, local, user, report, config_.num_objects,
                          config_.labels, current_round_);
  if (outcome.malformed) {
    DPTD_LOG_WARN << "round " << current_round_ << ": user " << report.user_id
                  << " sent malformed label claims, ingested the valid subset"
                  << " on shard " << shard;
    ++stats.malformed_reports;
  }
  stats.invalid_labels += outcome.invalid_labels;
  ++stats.reports_received;
  ++distinct_reporters_;
}

void ShardedServer::finish_round() {
  if (!round_open_) return;
  round_open_ = false;

  // Round close: in pipelined mode, drain every queue behind the barrier so
  // worker-local builders and statistics are final, then merge. Each shard's
  // sub-matrix was assembled incrementally as reports arrived either way;
  // the close only finalizes the K builders.
  std::vector<data::ObservationMatrix> shards;
  std::vector<ShardIngestStats> stats;
  if (pipeline_) {
    shards = pipeline_->finalize_shards();  // drains first
    stats = pipeline_->shard_stats();
  } else {
    stats = shard_stats_;
    shards.reserve(builders_.size());
    for (data::ObservationMatrixBuilder& builder : builders_) {
      shards.push_back(builder.finalize());
    }
  }

  RoundOutcome outcome;
  outcome.round = current_round_;
  outcome.reports_expected = participants_.size();
  outcome.reports_rejected = unroutable_rejected_;
  outcome.shard_stats = std::move(stats);
  for (const ShardIngestStats& shard : outcome.shard_stats) {
    outcome.reports_received += shard.reports_received;
    outcome.duplicates_ignored += shard.duplicates_ignored;
    outcome.reports_rejected += shard.rejected_reports;
  }

  if (outcome.reports_received == 0) {
    DPTD_LOG_WARN << "round " << current_round_ << ": no reports received";
    outcomes_.push_back(std::move(outcome));
    return;
  }

  // Hand the sharded view to the coordinator's reduction (the round-close
  // tail is shared with CrowdServer, which is what keeps the two servers
  // bitwise identical).
  const data::ShardedMatrix matrix = data::ShardedMatrix::from_shards(
      plan_, std::move(shards), config_.num_objects);
  aggregate_and_publish(config_, *method_, *network_, current_round_,
                        participants_, matrix, warm_, outcome);
  outcomes_.push_back(std::move(outcome));
}

void RoundServer::set_num_shards(std::size_t num_shards) {
  if (sharded_) {
    sharded_->set_num_shards(num_shards);
    return;
  }
  DPTD_REQUIRE(num_shards <= 1,
               "RoundServer: single-server path cannot grow shards; construct "
               "with num_shards > 1 (or ingest_threads > 0) to enable "
               "elastic scaling");
}

}  // namespace dptd::crowd
