#include "crowd/device.h"

#include <cmath>

#include "common/check.h"
#include "common/distributions.h"

namespace dptd::crowd {

UserDevice::UserDevice(DeviceConfig config, std::vector<std::uint64_t> objects,
                       std::vector<double> readings, net::Network& network)
    : config_(config),
      objects_(std::move(objects)),
      readings_(std::move(readings)),
      network_(&network),
      rng_(derive_seed(config.seed, config.id)) {
  DPTD_REQUIRE(objects_.size() == readings_.size(),
               "UserDevice: objects/readings size mismatch");
  DPTD_REQUIRE(config_.think_time_seconds >= 0.0,
               "UserDevice: negative think time");
  network_->attach(config_.id, *this);
}

void UserDevice::retask(std::vector<std::uint64_t> objects,
                        std::vector<double> readings, std::uint64_t seed) {
  DPTD_REQUIRE(objects.size() == readings.size(),
               "UserDevice: objects/readings size mismatch");
  objects_ = std::move(objects);
  readings_ = std::move(readings);
  config_.seed = seed;
  rng_ = Rng(derive_seed(seed, config_.id));
  sampled_variance_.reset();
  published_truths_.clear();
}

void UserDevice::set_think_time(double seconds) {
  DPTD_REQUIRE(seconds >= 0.0, "UserDevice: negative think time");
  config_.think_time_seconds = seconds;
}

void UserDevice::on_message(const net::Message& message) {
  switch (static_cast<MessageType>(message.type)) {
    case MessageType::kTaskAnnounce:
      handle_task(TaskAnnounce::decode(message.payload));
      break;
    case MessageType::kResultPublish: {
      const ResultPublish publish = ResultPublish::decode(message.payload);
      published_truths_ = publish.truths;
      break;
    }
    case MessageType::kReport:
    case MessageType::kLabelReport:
    case MessageType::kShardRequest:
    case MessageType::kShardResponse:
    case MessageType::kShutdown:
      // Devices never receive reports or coordinator RPC traffic; ignore
      // (robustness against misrouted traffic rather than an invariant
      // violation).
      break;
  }
}

void UserDevice::handle_task(const TaskAnnounce& task) {
  if (config_.behavior == DeviceBehavior::kDropout) return;

  Report report;
  report.round = task.round;
  report.user_id = config_.id;
  report.objects = objects_;
  report.values.reserve(readings_.size());

  switch (config_.behavior) {
    case DeviceBehavior::kHonest:
    case DeviceBehavior::kDuplicator: {
      // Algorithm 2 lines 3-4: private variance then Gaussian perturbation.
      const double variance = exponential(rng_, task.lambda2);
      sampled_variance_ = variance;
      const double sigma = std::sqrt(variance);
      for (double x : readings_) {
        report.values.push_back(x + normal(rng_, 0.0, sigma));
      }
      break;
    }
    case DeviceBehavior::kConstantLiar:
      for (std::size_t i = 0; i < readings_.size(); ++i) {
        report.values.push_back(config_.constant_value);
      }
      break;
    case DeviceBehavior::kSpammer:
      for (std::size_t i = 0; i < readings_.size(); ++i) {
        report.values.push_back(
            uniform(rng_, config_.spam_lo, config_.spam_hi));
      }
      break;
    case DeviceBehavior::kDropout:
      return;  // unreachable
  }

  // Upload after think time (models sensing/compute on the device). A
  // duplicator re-sends the identical report; the server must deduplicate.
  const std::size_t copies =
      config_.behavior == DeviceBehavior::kDuplicator ? 2 : 1;
  for (std::size_t c = 0; c < copies; ++c) {
    net::Message msg = make_message(config_.id, config_.server_id,
                                    MessageType::kReport, report.encode());
    network_->simulator().schedule(
        config_.think_time_seconds,
        [network = network_, m = std::move(msg)]() mutable {
          network->send(std::move(m));
        });
  }
}

}  // namespace dptd::crowd
