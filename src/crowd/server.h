// The untrusted aggregation server: announces tasks with the lambda2
// hyper-parameter, collects perturbed reports until a deadline, runs a
// truth-discovery method over whatever arrived, and publishes results.
//
// Reports are ingested as they arrive: each one is decoded, sanitized, and
// folded into an incremental ObservationMatrixBuilder (deduplicated by user
// id), so the deadline event only finalizes the matrix instead of assembling
// it in one burst. Malformed or byzantine reports (unknown user id,
// undecodable payload) are dropped and counted — one bad report never kills
// the server.
//
// The server never sees raw readings or per-user variances — only perturbed
// reports — matching the paper's threat model.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "crowd/protocol.h"
#include "data/builder.h"
#include "data/dataset.h"
#include "net/network.h"
#include "truth/interface.h"

namespace dptd::crowd {

struct ServerConfig {
  net::NodeId id = 1'000'000;  ///< out of the user-id range
  double lambda2 = 1.0;
  /// Collection window after the announcement; reports arriving later are
  /// ignored (stragglers).
  double collection_window_seconds = 30.0;
  std::size_t num_objects = 0;
  /// Seed each round's truth discovery from the previous round's converged
  /// truths/weights (honored by iterative methods; no-op for baselines and
  /// for the first round).
  bool warm_start = false;
};

struct RoundOutcome {
  std::uint64_t round = 0;
  std::size_t reports_received = 0;   ///< distinct users whose report counted
  std::size_t reports_expected = 0;
  std::size_t reports_rejected = 0;   ///< dropped: unknown user / undecodable
  std::size_t duplicates_ignored = 0; ///< re-sends from already-counted users
  truth::Result result;
  double aggregation_seconds = 0.0;  ///< wall-clock spent in truth discovery
  bool warm_started = false;         ///< truth discovery was seeded
};

class CrowdServer final : public net::Node {
 public:
  CrowdServer(ServerConfig config, std::unique_ptr<truth::TruthDiscovery> method,
              net::Network& network);

  void on_message(const net::Message& message) override;

  /// Announces round `round` to `user_ids` and schedules the aggregation
  /// deadline. Results are available from `outcomes()` after the simulator
  /// drains. The server is persistent: call again for each round of a
  /// campaign once the previous round has closed.
  void start_round(std::uint64_t round,
                   const std::vector<net::NodeId>& user_ids);

  const std::vector<RoundOutcome>& outcomes() const { return outcomes_; }
  const ServerConfig& config() const { return config_; }

 private:
  void finish_round();
  void ingest_report(const Report& report);

  ServerConfig config_;
  std::unique_ptr<truth::TruthDiscovery> method_;
  net::Network* network_;

  std::uint64_t current_round_ = 0;
  bool round_open_ = false;
  std::vector<net::NodeId> participants_;
  /// Streaming ingestion state for the open round.
  std::optional<data::ObservationMatrixBuilder> builder_;
  std::size_t rejected_ = 0;
  std::size_t duplicates_ = 0;
  /// Previous round's converged state, the warm-start seed.
  truth::Result last_result_;
  bool have_last_result_ = false;
  std::vector<RoundOutcome> outcomes_;
};

}  // namespace dptd::crowd
