// The untrusted aggregation server: announces tasks with the lambda2
// hyper-parameter, collects perturbed reports until a deadline, runs a
// truth-discovery method over whatever arrived, and publishes results.
//
// The server never sees raw readings or per-user variances — only perturbed
// reports — matching the paper's threat model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crowd/protocol.h"
#include "data/dataset.h"
#include "net/network.h"
#include "truth/interface.h"

namespace dptd::crowd {

struct ServerConfig {
  net::NodeId id = 1'000'000;  ///< out of the user-id range
  double lambda2 = 1.0;
  /// Collection window after the announcement; reports arriving later are
  /// ignored (stragglers).
  double collection_window_seconds = 30.0;
  std::size_t num_objects = 0;
};

struct RoundOutcome {
  std::uint64_t round = 0;
  std::size_t reports_received = 0;
  std::size_t reports_expected = 0;
  truth::Result result;
  double aggregation_seconds = 0.0;  ///< wall-clock spent in truth discovery
};

class CrowdServer final : public net::Node {
 public:
  CrowdServer(ServerConfig config, std::unique_ptr<truth::TruthDiscovery> method,
              net::Network& network);

  void on_message(const net::Message& message) override;

  /// Announces round `round` to `user_ids` and schedules the aggregation
  /// deadline. Results are available from `outcomes()` after the simulator
  /// drains.
  void start_round(std::uint64_t round,
                   const std::vector<net::NodeId>& user_ids);

  const std::vector<RoundOutcome>& outcomes() const { return outcomes_; }
  const ServerConfig& config() const { return config_; }

 private:
  void finish_round();

  ServerConfig config_;
  std::unique_ptr<truth::TruthDiscovery> method_;
  net::Network* network_;

  std::uint64_t current_round_ = 0;
  bool round_open_ = false;
  std::vector<net::NodeId> participants_;
  std::vector<Report> reports_;
  std::vector<RoundOutcome> outcomes_;
};

}  // namespace dptd::crowd
