// The untrusted aggregation server: announces tasks with the lambda2
// hyper-parameter, collects perturbed reports until a deadline, runs a
// truth-discovery method over whatever arrived, and publishes results.
//
// Reports are ingested as they arrive: each one is decoded, sanitized, and
// folded into an incremental ObservationMatrixBuilder (deduplicated by user
// id), so the deadline event only finalizes the matrix instead of assembling
// it in one burst. Malformed or byzantine reports (unknown user id,
// undecodable payload) are dropped and counted — one bad report never kills
// the server.
//
// The server never sees raw readings or per-user variances — only perturbed
// reports — matching the paper's threat model.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crowd/protocol.h"
#include "data/builder.h"
#include "data/dataset.h"
#include "data/sharding.h"
#include "net/transport.h"
#include "truth/interface.h"

namespace dptd::crowd {

/// Categorical-round ingestion policy, shared verbatim by CrowdServer, the
/// ShardedServer serial path, and the IngestPipeline workers so every
/// ingestion mode applies identical mechanisms and lands identical bits.
struct LabelIngestPolicy {
  /// Label alphabet size of the round; 0 (or 1) means a continuous campaign
  /// and disables label ingestion entirely.
  std::size_t num_labels = 0;
  /// Server-side empirical k-RR sampling applied per ingested claim (the
  /// pipeline-side mechanism: it runs on the ingest worker that owns the
  /// user's shard, never on the network thread). 1.0 disables it — clients
  /// that already perturbed locally are the normal LDP deployment.
  double rr_keep_probability = 1.0;
  /// Root seed of the sampling stream; each report's draws come from
  /// Rng(derive_seed(rr_seed, round, global_row)), so results are identical
  /// for every worker count and every shard count.
  std::uint64_t rr_seed = 0x6c61626cULL;  // "labl"

  bool enabled() const { return num_labels >= 2; }
};

struct ServerConfig {
  net::NodeId id = 1'000'000;  ///< out of the user-id range
  double lambda2 = 1.0;
  /// Collection window after the announcement; reports arriving later are
  /// ignored (stragglers).
  double collection_window_seconds = 30.0;
  std::size_t num_objects = 0;
  /// Seed each round's truth discovery from the previous round's converged
  /// truths/weights (honored by iterative methods; no-op for baselines and
  /// for the first round).
  bool warm_start = false;
  /// Ingestion shards for ShardedServer (clamped to the number of canonical
  /// user blocks each round). CrowdServer, the single-server path, ignores
  /// it. Aggregation results are bitwise identical for every value.
  std::size_t num_shards = 1;
  /// Canonical sufficient-statistics block size of the sharded aggregation
  /// path; runs compare bitwise only at equal block sizes.
  std::size_t stats_block_size = data::kDefaultStatsBlockSize;
  /// Ingestion worker threads for ShardedServer's parallel pipeline
  /// (crowd::IngestPipeline). 0 keeps ingestion synchronous on the network
  /// thread; N >= 1 routes reports onto bounded queues drained by
  /// min(N, num_shards) workers. The finalized matrices — and hence the
  /// published truths — are bitwise identical for every value: each shard's
  /// queue is FIFO from the single network thread, so per-shard ingestion
  /// order matches the serial path exactly. CrowdServer ignores it.
  std::size_t ingest_threads = 0;
  /// Categorical campaign knobs; labels.enabled() switches the round to
  /// kLabelReport ingestion (kReport uploads are then rejected, and vice
  /// versa for continuous rounds).
  LabelIngestPolicy labels;
};

/// Per-shard ingestion accounting for one round. CrowdServer reports one
/// entry (the whole fleet), ShardedServer one per ingestion shard, so the
/// outcome schema — including the malformed counter — is uniform across the
/// scaling knob.
struct ShardIngestStats {
  std::size_t reports_received = 0;   ///< distinct users landed on this shard
  std::size_t duplicates_ignored = 0; ///< re-sends routed to this shard
  std::size_t malformed_reports = 0;  ///< reports needing claim sanitization
  std::size_t rejected_reports = 0;   ///< undecodable after routing (pipeline)
  std::size_t invalid_labels = 0;     ///< label claims >= num_labels, dropped
};

struct RoundOutcome {
  std::uint64_t round = 0;
  std::size_t reports_received = 0;   ///< distinct users whose report counted
  std::size_t reports_expected = 0;
  std::size_t reports_rejected = 0;   ///< dropped: unknown user / undecodable
  std::size_t duplicates_ignored = 0; ///< re-sends from already-counted users
  /// Per-shard rollup (one entry on CrowdServer); the scalar counters above
  /// are the sums across shards plus unroutable rejects.
  std::vector<ShardIngestStats> shard_stats;
  truth::Result result;
  double aggregation_seconds = 0.0;  ///< wall-clock spent in truth discovery
  bool warm_started = false;         ///< truth discovery was seeded
};

/// Sanitizes a decoded report's claim list exactly like the batch assembler
/// (out-of-range objects and non-finite values are dropped, mismatched array
/// tails truncated) and ingests the valid subset into `builder` under
/// `local_user`. Shared by CrowdServer and ShardedServer so the two ingestion
/// paths can never diverge. Returns true when anything had to be dropped
/// (a malformed report); the clean path ingests the decoded arrays directly,
/// no copy. The caller must have dedup-checked `local_user` already.
bool ingest_report_claims(data::ObservationMatrixBuilder& builder,
                          std::size_t local_user, const Report& report,
                          std::size_t num_objects);

/// What ingest_label_claims had to drop or rewrite.
struct LabelIngestOutcome {
  bool malformed = false;          ///< array mismatch / out-of-range objects
  std::size_t invalid_labels = 0;  ///< claims with label >= num_labels
};

/// The categorical twin of ingest_report_claims: validates every claim's
/// object range AND label range (out-of-alphabet labels are dropped and
/// counted, never aborting the report), optionally applies the policy's
/// server-side k-RR sampling (seeded by (round, global_user), so the result
/// is identical on every ingestion mode), and ingests the surviving claims
/// as exact label-id doubles under `local_user`. Shared by CrowdServer, the
/// ShardedServer serial path, and the pipeline workers. The caller must have
/// dedup-checked `local_user` already.
LabelIngestOutcome ingest_label_claims(data::ObservationMatrixBuilder& builder,
                                       std::size_t local_user,
                                       std::size_t global_user,
                                       const LabelReport& report,
                                       std::size_t num_objects,
                                       const LabelIngestPolicy& policy,
                                       std::uint64_t round);

/// Maps a report's stable user/node id to its row in the round's observation
/// matrix (= its position in the participants roster). The common dense
/// roster [0, P) resolves by identity without a table; arbitrary rosters —
/// partial fleets after churn — build a hash index. Shared by both servers so
/// their ingestion semantics can never diverge.
class ParticipantIndex {
 public:
  void build(const std::vector<net::NodeId>& participants);
  /// The matrix row of `user`, or nullopt when `user` is not enrolled this
  /// round (byzantine or stale id).
  std::optional<std::size_t> row_of(net::NodeId user) const;

 private:
  std::size_t size_ = 0;
  bool identity_ = true;
  std::unordered_map<net::NodeId, std::size_t> rows_;
};

/// Previous round's converged state, the warm-start seed, together with the
/// roster its weights are indexed by. Keeping the roster is what lets
/// partial fleets warm-start: when the participant set changes
/// round-over-round, each surviving user's weight is remapped through its
/// stable node id instead of the whole seed being dropped.
struct WarmState {
  truth::Result result;
  std::vector<net::NodeId> participants;
  bool valid = false;
};

/// The weight seed for `participants` derived from `warm`: the previous
/// weights verbatim when the roster is unchanged, a stable-id remap (new
/// users start at the surviving fleet's mean weight) when it differs, empty
/// when nothing usable survives.
std::vector<double> remap_warm_weights(
    const WarmState& warm, const std::vector<net::NodeId>& participants,
    std::size_t num_users);

/// Round-close tail shared by CrowdServer and ShardedServer: object-coverage
/// check over the (possibly sharded) matrix, warm-seed construction, the
/// run_sharded aggregation call, the ResultPublish fan-out, and the
/// warm-state update. Returns false when uncovered objects forced the round
/// to skip aggregation. Keeping this in one place is what guarantees the two
/// servers publish bitwise-identical outcomes.
bool aggregate_and_publish(const ServerConfig& config,
                           truth::TruthDiscovery& method,
                           net::Transport& network,
                           std::uint64_t round,
                           const std::vector<net::NodeId>& participants,
                           const data::ShardedMatrix& matrix, WarmState& warm,
                           RoundOutcome& outcome);

class CrowdServer final : public net::Node {
 public:
  CrowdServer(ServerConfig config, std::unique_ptr<truth::TruthDiscovery> method,
              net::Transport& network);

  void on_message(const net::Message& message) override;

  /// Announces round `round` to `user_ids` and schedules the aggregation
  /// deadline. Results are available from `outcomes()` after the simulator
  /// drains. The server is persistent: call again for each round of a
  /// campaign once the previous round has closed.
  void start_round(std::uint64_t round,
                   const std::vector<net::NodeId>& user_ids);

  const std::vector<RoundOutcome>& outcomes() const { return outcomes_; }
  const ServerConfig& config() const { return config_; }

 private:
  void finish_round();
  void ingest_report(const Report& report);
  void ingest_label_report(const LabelReport& report);

  ServerConfig config_;
  std::unique_ptr<truth::TruthDiscovery> method_;
  net::Transport* network_;

  std::uint64_t current_round_ = 0;
  bool round_open_ = false;
  std::vector<net::NodeId> participants_;
  ParticipantIndex index_;
  /// Streaming ingestion state for the open round.
  std::optional<data::ObservationMatrixBuilder> builder_;
  std::size_t rejected_ = 0;
  std::size_t duplicates_ = 0;
  std::size_t malformed_ = 0;
  std::size_t invalid_labels_ = 0;
  WarmState warm_;
  std::vector<RoundOutcome> outcomes_;
};

}  // namespace dptd::crowd
