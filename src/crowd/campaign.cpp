#include "crowd/campaign.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/distributions.h"
#include "common/statistics.h"
#include "crowd/sharded_server.h"
#include "truth/registry.h"

namespace dptd::crowd {

double CampaignResult::mean_mae_vs_truth() const {
  RunningStats stats;
  for (const RoundRecord& record : rounds) {
    if (std::isfinite(record.mae_vs_truth)) stats.add(record.mae_vs_truth);
  }
  return stats.count() > 0 ? stats.mean()
                           : std::numeric_limits<double>::quiet_NaN();
}

double CampaignResult::mean_iterations() const {
  RunningStats stats;
  for (const RoundRecord& record : rounds) {
    if (record.iterations > 0) {
      stats.add(static_cast<double>(record.iterations));
    }
  }
  return stats.count() > 0 ? stats.mean()
                           : std::numeric_limits<double>::quiet_NaN();
}

std::size_t CampaignResult::total_reports() const {
  std::size_t total = 0;
  for (const RoundRecord& record : rounds) total += record.reports_received;
  return total;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  const SessionConfig& session = config.session;
  DPTD_REQUIRE(config.num_rounds > 0, "run_campaign: need >= 1 round");
  DPTD_REQUIRE(config.churn_probability >= 0.0 &&
                   config.churn_probability < 1.0,
               "run_campaign: churn_probability must be in [0,1)");
  DPTD_REQUIRE(session.dropout_fraction >= 0.0 &&
                   session.dropout_fraction < 1.0,
               "run_campaign: dropout_fraction must be in [0,1)");
  DPTD_REQUIRE(
      session.adversary_fraction >= 0.0 && session.adversary_fraction < 1.0,
      "run_campaign: adversary_fraction must be in [0,1)");
  DPTD_REQUIRE(session.dropout_fraction + session.adversary_fraction < 1.0,
               "run_campaign: dropouts + adversaries must leave honest users");
  DPTD_REQUIRE(session.mean_think_time_seconds >= 0.0,
               "run_campaign: negative think time");
  DPTD_REQUIRE(!config.drifting_truths || config.truth_drift_stddev >= 0.0,
               "run_campaign: negative truth_drift_stddev");
  for (const std::size_t k : config.shard_schedule) {
    DPTD_REQUIRE(k > 0, "run_campaign: shard_schedule entries must be >= 1");
  }

  const std::size_t S = config.workload.num_users;
  const std::size_t N = config.workload.num_objects;

  // Persistent fleet: one simulator, network, server, and device per user for
  // the whole campaign. Rounds re-task the fleet instead of rebuilding it.
  net::Simulator sim;
  net::Network network(sim, session.latency, derive_seed(config.seed, 0xfe7));

  ServerConfig server_config;
  server_config.lambda2 = session.lambda2;
  server_config.collection_window_seconds = session.collection_window_seconds;
  server_config.num_objects = N;
  server_config.warm_start = config.warm_start;
  // Elastic campaigns pick the server type for the *largest* scheduled shard
  // count; each round then resizes down/up before it opens. Round outcomes
  // are bitwise identical for every K at equal canonical block size, so the
  // knobs only change how the service scales.
  std::size_t max_shards = session.num_shards;
  for (const std::size_t k : config.shard_schedule) {
    max_shards = std::max(max_shards, k);
  }
  server_config.num_shards = max_shards;
  server_config.stats_block_size = session.stats_block_size;
  server_config.ingest_threads = session.ingest_threads;
  RoundServer server(server_config,
                     truth::make_method(session.method, session.convergence),
                     network);

  std::vector<std::unique_ptr<UserDevice>> devices;
  std::vector<net::NodeId> user_ids;
  devices.reserve(S);
  user_ids.reserve(S);
  for (std::size_t s = 0; s < S; ++s) {
    DeviceConfig dc;
    dc.id = s;
    dc.server_id = server_config.id;
    dc.think_time_seconds = 0.0;
    dc.constant_value = 0.0;  // kConstantLiar payload, as in run_session
    devices.push_back(std::make_unique<UserDevice>(
        dc, std::vector<std::uint64_t>{}, std::vector<double>{}, network));
    user_ids.push_back(s);
  }

  // No-noise per-round reference aggregation (always cold), when requested.
  const auto reference_method =
      config.compute_reference_mae
          ? truth::make_method(session.method, session.convergence)
          : nullptr;

  Rng churn_rng(derive_seed(config.seed, 0xc4u));
  Rng think_rng(derive_seed(config.seed, 0x714e4));
  Rng drift_rng(derive_seed(config.seed, 0xd21f7));

  const auto num_adversaries = static_cast<std::size_t>(
      std::floor(session.adversary_fraction * static_cast<double>(S)));

  CampaignResult result;
  // Drift-mode state carried across rounds: truths move by a Gaussian step,
  // per-user error variances persist (a device's sensor quality is a
  // property of the device, not of the round).
  std::vector<double> truths;
  std::vector<double> user_variances;
  net::NetworkStats stats_before;

  for (std::size_t round = 0; round < config.num_rounds; ++round) {
    data::SyntheticConfig workload = config.workload;
    workload.seed = derive_seed(config.seed, round, 0xda7a);

    data::Dataset dataset;
    if (config.drifting_truths && !truths.empty()) {
      // Slowly moving world: last round's truths plus a small Gaussian step,
      // same device fleet quality as round 0.
      for (double& t : truths) {
        t += normal(drift_rng, 0.0, config.truth_drift_stddev);
      }
      dataset = data::generate_synthetic_round(workload, truths,
                                               user_variances);
    } else {
      dataset = data::generate_synthetic(workload);
      if (config.drifting_truths) {
        truths = dataset.ground_truth;
        user_variances.resize(S);
        for (std::size_t s = 0; s < S; ++s) {
          user_variances[s] = dataset.provenance[s].error_variance;
        }
      }
    }

    // Churn: re-draw this round's dropout block on top of the static
    // fraction, clamped against the remaining honest mass so that
    // adversaries + dropouts never consume the whole fleet. In roster mode
    // the churn draws instead remove the churned devices from this round's
    // participant list entirely (a partial fleet).
    std::size_t num_dropouts = static_cast<std::size_t>(
        std::floor(session.dropout_fraction * static_cast<double>(S)));
    std::vector<char> churned;  // per-user flags, roster mode only
    if (config.churn_probability > 0.0) {
      if (config.roster_churn) churned.assign(S, 0);
      for (std::size_t s = 0; s < S; ++s) {
        if (!bernoulli(churn_rng, config.churn_probability)) continue;
        if (config.roster_churn) {
          churned[s] = 1;
        } else {
          ++num_dropouts;
        }
      }
    }
    num_dropouts = std::min(num_dropouts, S - num_adversaries - 1);
    std::vector<net::NodeId> churn_roster;
    if (!churned.empty()) {
      // At least one honest device must stay enrolled; the clamp above
      // guarantees user S-1 sits in the honest block.
      bool any_honest = false;
      for (std::size_t s = num_adversaries + num_dropouts; s < S; ++s) {
        if (!churned[s]) {
          any_honest = true;
          break;
        }
      }
      if (!any_honest) churned[S - 1] = 0;
      for (std::size_t s = 0; s < S; ++s) {
        if (!churned[s]) churn_roster.push_back(user_ids[s]);
      }
    }
    // The common full-fleet path (churn off, or behaviour-only churn) hands
    // the persistent id list straight through — no per-round copy of a
    // million-entry roster.
    const std::vector<net::NodeId>& round_ids =
        churned.empty() ? user_ids : churn_roster;

    // Re-task the fleet: fresh readings, per-round noise streams, re-drawn
    // behaviours and think times. Mirrors the session layer's assignment:
    // adversaries take the lowest ids, dropouts the next block.
    const std::uint64_t round_seed = derive_seed(config.seed, round, 0x5e55);
    for (std::size_t s = 0; s < S; ++s) {
      UserDevice& device = *devices[s];
      std::vector<std::uint64_t> objects;
      std::vector<double> readings;
      const auto row = dataset.observations.user_entries(s);
      objects.reserve(row.size());
      readings.reserve(row.size());
      for (const auto& e : row) {
        objects.push_back(e.object);
        readings.push_back(e.value);
      }
      device.retask(std::move(objects), std::move(readings),
                    derive_seed(round_seed, 0xd371c3, s));
      device.set_think_time(
          session.mean_think_time_seconds > 0.0
              ? exponential(think_rng, 1.0 / session.mean_think_time_seconds)
              : 0.0);
      if (s < num_adversaries) {
        device.set_behavior(session.adversary_behavior);
      } else if (s < num_adversaries + num_dropouts) {
        device.set_behavior(DeviceBehavior::kDropout);
      } else {
        device.set_behavior(DeviceBehavior::kHonest);
      }
    }

    if (!config.shard_schedule.empty()) {
      const std::size_t idx =
          std::min(round, config.shard_schedule.size() - 1);
      server.set_num_shards(config.shard_schedule[idx]);
    }
    server.start_round(round, round_ids);
    sim.run();

    DPTD_CHECK(!server.outcomes().empty(),
               "run_campaign: no round outcome recorded");
    const RoundOutcome& outcome = server.outcomes().back();

    RoundRecord record;
    record.round = round;
    record.reports_received = outcome.reports_received;
    record.reports_expected = outcome.reports_expected;
    record.reports_rejected = outcome.reports_rejected;
    record.duplicates_ignored = outcome.duplicates_ignored;
    record.iterations = outcome.result.iterations;
    record.converged = outcome.result.converged;
    record.warm_started = outcome.warm_started;
    record.truths = outcome.result.truths;

    // Per-round traffic: the network accumulates across the campaign, so
    // record the delta against the previous round's snapshot.
    const net::NetworkStats& stats_after = network.stats();
    record.network.messages_sent =
        stats_after.messages_sent - stats_before.messages_sent;
    record.network.messages_delivered =
        stats_after.messages_delivered - stats_before.messages_delivered;
    record.network.messages_dropped =
        stats_after.messages_dropped - stats_before.messages_dropped;
    record.network.messages_undeliverable = stats_after.messages_undeliverable -
                                            stats_before.messages_undeliverable;
    record.network.bytes_sent = stats_after.bytes_sent - stats_before.bytes_sent;
    record.network.bytes_delivered =
        stats_after.bytes_delivered - stats_before.bytes_delivered;
    stats_before = stats_after;

    if (!outcome.result.truths.empty()) {
      record.mae_vs_truth = mean_absolute_error(outcome.result.truths,
                                                dataset.ground_truth);
      if (reference_method != nullptr) {
        const truth::Result reference =
            reference_method->run(dataset.observations);
        record.mae_vs_unperturbed =
            mean_absolute_error(outcome.result.truths, reference.truths);
      } else {
        record.mae_vs_unperturbed = std::numeric_limits<double>::quiet_NaN();
      }
    } else {
      record.mae_vs_truth = std::numeric_limits<double>::quiet_NaN();
      record.mae_vs_unperturbed = std::numeric_limits<double>::quiet_NaN();
    }
    result.rounds.push_back(std::move(record));
  }
  return result;
}

}  // namespace dptd::crowd
