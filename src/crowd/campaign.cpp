#include "crowd/campaign.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/distributions.h"
#include "common/statistics.h"
#include "truth/registry.h"

namespace dptd::crowd {

double CampaignResult::mean_mae_vs_truth() const {
  RunningStats stats;
  for (const RoundRecord& record : rounds) {
    if (std::isfinite(record.mae_vs_truth)) stats.add(record.mae_vs_truth);
  }
  return stats.count() > 0 ? stats.mean()
                           : std::numeric_limits<double>::quiet_NaN();
}

std::size_t CampaignResult::total_reports() const {
  std::size_t total = 0;
  for (const RoundRecord& record : rounds) total += record.reports_received;
  return total;
}

CampaignResult run_campaign(const CampaignConfig& config) {
  DPTD_REQUIRE(config.num_rounds > 0, "run_campaign: need >= 1 round");
  DPTD_REQUIRE(config.churn_probability >= 0.0 &&
                   config.churn_probability < 1.0,
               "run_campaign: churn_probability must be in [0,1)");

  CampaignResult result;
  Rng churn_rng(derive_seed(config.seed, 0xc4u));

  for (std::size_t round = 0; round < config.num_rounds; ++round) {
    // Fresh objects each round, same device population statistics.
    data::SyntheticConfig workload = config.workload;
    workload.seed = derive_seed(config.seed, round, 0xda7a);
    const data::Dataset dataset = data::generate_synthetic(workload);

    SessionConfig session = config.session;
    session.seed = derive_seed(config.seed, round, 0x5e55);
    // Churn: bump this round's dropout fraction stochastically.
    if (config.churn_probability > 0.0) {
      double churned = 0.0;
      for (std::size_t s = 0; s < dataset.num_users(); ++s) {
        if (bernoulli(churn_rng, config.churn_probability)) churned += 1.0;
      }
      session.dropout_fraction = std::min(
          0.9, session.dropout_fraction +
                   churned / static_cast<double>(dataset.num_users()));
    }

    const SessionResult session_result = run_session(dataset, session);

    RoundRecord record;
    record.round = round;
    record.reports_received = session_result.round.reports_received;
    record.reports_expected = session_result.round.reports_expected;
    record.network = session_result.network;

    if (!session_result.round.result.truths.empty()) {
      record.mae_vs_truth = mean_absolute_error(
          session_result.round.result.truths, dataset.ground_truth);
      // No-noise reference aggregation on the same data and method.
      const auto method =
          truth::make_method(session.method, session.convergence);
      const truth::Result reference = method->run(dataset.observations);
      record.mae_vs_unperturbed = mean_absolute_error(
          session_result.round.result.truths, reference.truths);
    } else {
      record.mae_vs_truth = std::numeric_limits<double>::quiet_NaN();
      record.mae_vs_unperturbed = std::numeric_limits<double>::quiet_NaN();
    }
    result.rounds.push_back(record);
  }
  return result;
}

}  // namespace dptd::crowd
