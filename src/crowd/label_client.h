// Client side of a categorical campaign: build a LabelReport whose claims
// were perturbed locally with k-ary randomized response, and a simulated
// device that answers task announcements with one such upload.
//
// This is the LDP deployment of the categorical extension — the label leaves
// the device already randomized, so the server (which only debiases
// aggregates) never observes a raw claim. The flip stream is keyed by
// (seed, round, user id), never by arrival order, so a fleet replays
// bit-identically under any network schedule.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "categorical/label_matrix.h"
#include "crowd/device.h"
#include "crowd/protocol.h"
#include "net/network.h"

namespace dptd::crowd {

/// Builds the upload for one user: every claim of `truths` passed through
/// k-RR at `keep_probability` (1.0 = identity, no draws consumed; must be in
/// (1/num_labels, 1] otherwise). Draws come from
/// Rng(derive_seed(seed, round, user_id)) — one stream per (round, user),
/// independent of every other report.
LabelReport make_label_report(std::uint64_t round, net::NodeId user_id,
                              std::span<const std::uint64_t> objects,
                              std::span<const categorical::Label> truths,
                              std::size_t num_labels, double keep_probability,
                              std::uint64_t seed);

struct LabelDeviceConfig {
  net::NodeId id = 0;  ///< also the user index in the matrix
  net::NodeId server_id = 0;
  DeviceBehavior behavior = DeviceBehavior::kHonest;
  std::size_t num_labels = 2;
  /// Per-report LDP budget of the client-side k-RR; <= 0 disables local
  /// perturbation (a trusted-aggregator deployment — the server may still
  /// apply its own LabelIngestPolicy sampling).
  double epsilon = 1.0;
  categorical::Label constant_label = 0;  ///< kConstantLiar payload
  double think_time_seconds = 0.5;
  std::uint64_t seed = 1;
};

/// The categorical twin of UserDevice: on TaskAnnounce it perturbs its
/// private labels with k-RR and uploads a single LabelReport after the think
/// time. Shares DeviceBehavior so robustness fleets mix continuous and
/// categorical adversaries: a constant liar claims `constant_label`
/// everywhere, a spammer draws uniform labels, a duplicator re-sends the
/// identical upload.
class LabelDevice final : public net::Node {
 public:
  /// `objects[i]`/`labels[i]` are the device's private claims.
  LabelDevice(LabelDeviceConfig config, std::vector<std::uint64_t> objects,
              std::vector<categorical::Label> labels, net::Network& network);

  void on_message(const net::Message& message) override;

  /// Re-tasks the device for a new round, mirroring UserDevice::retask.
  void retask(std::vector<std::uint64_t> objects,
              std::vector<categorical::Label> labels, std::uint64_t seed);

  void set_behavior(DeviceBehavior behavior) { config_.behavior = behavior; }

  /// Truths the device received back from the server (empty until publish).
  const std::vector<double>& published_truths() const {
    return published_truths_;
  }

  const LabelDeviceConfig& config() const { return config_; }

 private:
  void handle_task(const TaskAnnounce& task);

  LabelDeviceConfig config_;
  std::vector<std::uint64_t> objects_;
  std::vector<categorical::Label> labels_;
  net::Network* network_;
  std::vector<double> published_truths_;
};

}  // namespace dptd::crowd
