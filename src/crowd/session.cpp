#include "crowd/session.h"

#include <cmath>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/distributions.h"
#include "crowd/sharded_server.h"
#include "truth/registry.h"

namespace dptd::crowd {

SessionResult run_session(const data::Dataset& dataset,
                          const SessionConfig& config) {
  dataset.validate();
  DPTD_REQUIRE(config.dropout_fraction >= 0.0 && config.dropout_fraction < 1.0,
               "SessionConfig: dropout_fraction must be in [0,1)");
  DPTD_REQUIRE(
      config.adversary_fraction >= 0.0 && config.adversary_fraction < 1.0,
      "SessionConfig: adversary_fraction must be in [0,1)");
  DPTD_REQUIRE(config.dropout_fraction + config.adversary_fraction < 1.0,
               "SessionConfig: dropouts + adversaries must leave honest users");
  DPTD_REQUIRE(config.mean_think_time_seconds >= 0.0,
               "SessionConfig: negative think time");

  const std::size_t S = dataset.num_users();
  const std::size_t N = dataset.num_objects();

  net::Simulator sim;
  net::Network network(sim, config.latency, derive_seed(config.seed, 0xfe7));

  ServerConfig server_config;
  server_config.lambda2 = config.lambda2;
  server_config.collection_window_seconds = config.collection_window_seconds;
  server_config.num_objects = N;
  server_config.num_shards = config.num_shards;
  server_config.stats_block_size = config.stats_block_size;
  server_config.ingest_threads = config.ingest_threads;
  // num_shards > 1 routes ingestion across K shard builders (and
  // ingest_threads > 0 pipelines it across workers); aggregation is bitwise
  // identical either way (same canonical block size).
  RoundServer server(server_config,
                     truth::make_method(config.method, config.convergence),
                     network);

  // Behaviour assignment: adversaries take the lowest ids, dropouts the next
  // block, everyone else honest (deterministic, mirrors data::synthetic).
  const auto num_adversaries = static_cast<std::size_t>(
      std::floor(config.adversary_fraction * static_cast<double>(S)));
  const auto num_dropouts = static_cast<std::size_t>(
      std::floor(config.dropout_fraction * static_cast<double>(S)));

  Rng think_rng(derive_seed(config.seed, 0x714e4));
  std::vector<std::unique_ptr<UserDevice>> devices;
  std::vector<net::NodeId> user_ids;
  devices.reserve(S);
  user_ids.reserve(S);

  for (std::size_t s = 0; s < S; ++s) {
    std::vector<std::uint64_t> objects;
    std::vector<double> readings;
    const auto row = dataset.observations.user_entries(s);
    objects.reserve(row.size());
    readings.reserve(row.size());
    for (const auto& e : row) {
      objects.push_back(e.object);
      readings.push_back(e.value);
    }
    DeviceConfig dc;
    dc.id = s;
    dc.server_id = server_config.id;
    dc.seed = derive_seed(config.seed, 0xd371c3, s);
    dc.think_time_seconds =
        config.mean_think_time_seconds > 0.0
            ? exponential(think_rng, 1.0 / config.mean_think_time_seconds)
            : 0.0;
    if (s < num_adversaries) {
      dc.behavior = config.adversary_behavior;
      dc.constant_value = 0.0;
    } else if (s < num_adversaries + num_dropouts) {
      dc.behavior = DeviceBehavior::kDropout;
    }
    devices.push_back(std::make_unique<UserDevice>(
        dc, std::move(objects), std::move(readings), network));
    user_ids.push_back(s);
  }

  server.start_round(1, user_ids);
  sim.run();

  SessionResult result;
  DPTD_CHECK(!server.outcomes().empty(), "session: no round outcome recorded");
  result.round = server.outcomes().back();
  result.network = network.stats();
  result.sim_duration_seconds = sim.now();
  result.sampled_variances.assign(S,
                                  std::numeric_limits<double>::quiet_NaN());
  for (std::size_t s = 0; s < S; ++s) {
    if (const auto v = devices[s]->sampled_variance()) {
      result.sampled_variances[s] = *v;
    }
  }
  return result;
}

}  // namespace dptd::crowd
