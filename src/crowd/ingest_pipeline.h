// Parallel pipelined report ingestion: the network thread only *routes* —
// an O(1) header peek resolves the owning shard — and enqueues the raw
// encoded report onto a bounded ring queue; worker threads drain the queues
// in batches and run the expensive half of ingestion (full decode, claim
// sanitization, dedup, row append) against the shard builders they own.
//
// Topology: K shards (data::ShardPlan) are split contiguously across
// W = min(ingest workers, K) worker threads. Each worker has ONE queue fed
// by the single producer and exclusively owns the builders of its shard
// range, so the hot path needs no locks around builder state and no shared
// atomics: per-shard ingestion statistics are plain worker-local counters,
// merged after the drain barrier at round close.
//
// Determinism by construction: each queue is FIFO from a single producer,
// and a shard's reports all travel through the one queue of its owning
// worker, so per-shard ingestion order — and therefore dedup outcomes and
// the finalized sub-matrix — is bitwise identical to serial ingestion, for
// every worker count including zero.
//
// Backpressure: queues are bounded; when one fills, the producer blocks in
// submit() until the worker catches up, so a slow shard throttles intake
// instead of growing memory without bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/mpsc_queue.h"
#include "crowd/server.h"
#include "data/builder.h"
#include "data/sharding.h"

namespace dptd::crowd {

struct IngestPipelineConfig {
  /// Worker threads; clamped to the round's shard count, min 1.
  std::size_t num_workers = 1;
  /// Ring slots per worker queue — the backpressure bound.
  std::size_t queue_capacity = 4096;
  /// Max reports a worker dequeues per lock acquisition.
  std::size_t max_batch = 128;
};

class IngestPipeline {
 public:
  explicit IngestPipeline(IngestPipelineConfig config);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Arms the pipeline for a round: shard builders shaped to `plan`, counters
  /// zeroed, workers started (re-used across rounds when the shard/worker
  /// topology is unchanged — the builder storage is recycled via reshape()).
  /// The previous round, if any, must have been drained (finalize_shards or
  /// drain); this is the caller's round-close barrier. Categorical rounds
  /// additionally pass the round number and the label policy: label-range
  /// validation and the policy's optional k-RR sampling run on the worker
  /// that owns the report's shard (never on the producer/network thread),
  /// seeded by (round, global row) so the bits match serial ingestion for
  /// every worker count.
  void begin_round(const data::ShardPlan& plan, std::size_t num_objects,
                   std::uint64_t round = 0,
                   const LabelIngestPolicy& labels = {});

  /// Producer side (one thread): enqueues the encoded report `payload` for
  /// the matrix row `row` (the caller has already peeked the header and
  /// resolved row + round, and verified the message kind matches the round —
  /// `is_label` selects the LabelReport decode path on the worker). Blocks
  /// when the owning worker's queue is full.
  void submit(std::size_t row, std::vector<std::uint8_t> payload,
              bool is_label = false);
  /// Zero-copy variant: `payload` must outlive the next drain() (e.g. a
  /// pre-encoded benchmark corpus).
  void submit_view(std::size_t row, std::span<const std::uint8_t> payload,
                   bool is_label = false);

  /// Blocks until every submitted report has been fully ingested (the round
  /// close barrier). After drain() returns, counters and builders are exact
  /// and safe to read from the calling thread.
  void drain();

  /// Distinct users ingested so far, summed across workers. Monotone and
  /// cheap (one relaxed load per worker); exact only after drain().
  std::size_t distinct_reporters() const;

  /// Per-shard accounting for the round. Call only after drain().
  std::vector<ShardIngestStats> shard_stats() const;

  /// Drains, finalizes the per-shard builders into sub-matrices (resetting
  /// them), and returns them in shard order — ready for
  /// data::ShardedMatrix::from_shards.
  std::vector<data::ObservationMatrix> finalize_shards();

  const data::ShardPlan& plan() const { return plan_; }
  std::size_t num_workers() const { return workers_.size(); }
  std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Item {
    std::size_t shard = 0;
    std::size_t local_user = 0;
    bool is_label = false;  ///< decode as LabelReport instead of Report
    /// The encoded report: `view` points into `owned` or into caller-owned
    /// memory (the zero-copy path). Moving an Item keeps `view` valid —
    /// vector moves never relocate the heap buffer.
    std::span<const std::uint8_t> view;
    std::vector<std::uint8_t> owned;
  };

  /// Builder + round counters of one shard; written only by the owning
  /// worker while the round is open, read by the coordinator after drain().
  struct ShardState {
    std::unique_ptr<data::ObservationMatrixBuilder> builder;
    ShardIngestStats stats;
  };

  /// One worker thread: a bounded queue, its thread, and the padded counter
  /// mirrors the coordinator polls (sole writer: the worker itself).
  struct Worker {
    explicit Worker(std::size_t queue_capacity) : queue(queue_capacity) {}

    BoundedMpscQueue<Item> queue;
    std::thread thread;
    std::size_t shard_begin = 0;
    std::size_t shard_end = 0;
    std::size_t pushed = 0;  ///< producer-thread-local
    alignas(64) std::atomic<std::size_t> processed{0};
    alignas(64) std::atomic<std::size_t> distinct{0};
  };

  void enqueue(std::size_t row, Item item);
  void worker_loop(Worker& worker);
  void process_item(Worker& worker, Item& item);
  void stop_workers();

  IngestPipelineConfig config_;
  data::ShardPlan plan_;
  std::size_t num_objects_ = 0;
  std::uint64_t round_ = 0;
  LabelIngestPolicy labels_;
  std::vector<ShardState> shards_;
  std::vector<std::size_t> worker_of_shard_;
  std::vector<std::unique_ptr<Worker>> workers_;

  /// Drain rendezvous: the coordinator arms `draining_`, workers notify
  /// after each batch while it is set. seq_cst on both sides closes the
  /// lost-wakeup window (see drain()).
  std::atomic<bool> draining_{false};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace dptd::crowd
