#include "truth/catd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/special_functions.h"
#include "common/statistics.h"

namespace dptd::truth {

Catd::Catd(CatdConfig config) : config_(config) {
  DPTD_REQUIRE(config_.significance > 0.0 && config_.significance < 1.0,
               "Catd: significance must be in (0,1)");
  DPTD_REQUIRE(config_.convergence.max_iterations > 0,
               "Catd: max_iterations must be positive");
  DPTD_REQUIRE(config_.min_residual > 0.0,
               "Catd: min_residual must be positive");
}

Result Catd::run(const data::ObservationMatrix& obs) const {
  const std::size_t S = obs.num_users();
  const std::size_t N = obs.num_objects();
  DPTD_REQUIRE(S > 0 && N > 0, "Catd::run: empty observation matrix");

  Result result;
  // Initialize truths at per-object medians (the CATD paper's robust start).
  result.truths.resize(N);
  for (std::size_t n = 0; n < N; ++n) {
    result.truths[n] = median(obs.object_values(n));
  }

  // Chi-squared quantiles depend only on each user's claim count; cache them.
  std::vector<std::size_t> counts(S, 0);
  obs.for_each([&counts](std::size_t s, std::size_t, double) { ++counts[s]; });
  std::vector<double> chi2(S, 0.0);
  for (std::size_t s = 0; s < S; ++s) {
    if (counts[s] > 0) {
      // Lower-tail quantile at alpha/2 == upper-tail at 1 - alpha/2.
      chi2[s] = chi_squared_quantile(1.0 - config_.significance / 2.0,
                                     static_cast<double>(counts[s]));
    }
  }

  result.weights.assign(S, 0.0);
  for (std::size_t it = 1; it <= config_.convergence.max_iterations; ++it) {
    // Weight update: w_s = chi2_s / sum of squared residuals.
    std::vector<double> residual(S, 0.0);
    obs.for_each([&](std::size_t s, std::size_t n, double v) {
      const double d = v - result.truths[n];
      residual[s] += d * d;
    });
    for (std::size_t s = 0; s < S; ++s) {
      if (counts[s] == 0) {
        result.weights[s] = 0.0;
        continue;
      }
      result.weights[s] = chi2[s] / std::max(residual[s], config_.min_residual);
    }

    std::vector<double> next = weighted_aggregate(obs, result.weights);
    const double change = truth_change(result.truths, next);
    result.truths = std::move(next);
    result.iterations = it;
    if (change < config_.convergence.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace dptd::truth
