#include "truth/catd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/special_functions.h"
#include "common/statistics.h"
#include "truth/sharded_stats.h"

namespace dptd::truth {

Catd::Catd(CatdConfig config) : config_(config) {
  DPTD_REQUIRE(config_.significance > 0.0 && config_.significance < 1.0,
               "Catd: significance must be in (0,1)");
  DPTD_REQUIRE(config_.convergence.max_iterations > 0,
               "Catd: max_iterations must be positive");
  DPTD_REQUIRE(config_.min_residual > 0.0,
               "Catd: min_residual must be positive");
}

Result Catd::run(const data::ObservationMatrix& obs) const {
  return run_impl(data::ShardedMatrix::single(obs), nullptr);
}

Result Catd::run_warm(const data::ObservationMatrix& obs,
                      const WarmStart& warm) const {
  validate_warm_start(obs, warm);
  return run_impl(data::ShardedMatrix::single(obs), &warm);
}

Result Catd::run_sharded(const data::ShardedMatrix& shards,
                         const WarmStart& warm) const {
  validate_warm_start(shards.num_users(), shards.num_objects(), warm);
  return run_impl(shards, &warm);
}

void catd_chi_squared(const data::ShardedMatrix& shards, ThreadPool* pool,
                      double significance, std::span<double> chi2) {
  for_each_user_row(shards, pool, [&](std::size_t s, auto row) {
    if (!row.empty()) {
      // Lower-tail quantile at alpha/2 == upper-tail at 1 - alpha/2.
      chi2[s] = chi_squared_quantile(1.0 - significance / 2.0,
                                     static_cast<double>(row.size()));
    }
  });
}

void catd_user_weights(const data::ShardedMatrix& shards, ThreadPool* pool,
                       std::span<const double> chi2,
                       const std::vector<double>& truths, double min_residual,
                       std::span<double> weights) {
  for_each_user_row(shards, pool, [&](std::size_t s, auto row) {
    if (row.empty()) {
      weights[s] = 0.0;
      return;
    }
    double residual = 0.0;
    for (const auto& e : row) {
      const double d = e.value - truths[e.object];
      residual += d * d;
    }
    weights[s] = chi2[s] / std::max(residual, min_residual);
  });
}

Result Catd::run_impl(const data::ShardedMatrix& shards,
                      const WarmStart* warm) const {
  const std::size_t S = shards.num_users();
  const std::size_t N = shards.num_objects();
  DPTD_REQUIRE(S > 0 && N > 0, "Catd::run: empty observation matrix");

  RunPool run_pool(config_.num_threads);
  ThreadPool* pool = run_pool.get();

  Result result;
  if (warm != nullptr && !warm->weights.empty()) {
    // Seeded start: the previous round's converged weights aggregate THIS
    // round's claims (user quality persists across rounds; truths and noise
    // do not).
    result.truths = weighted_aggregate(shards, warm->weights, pool);
  } else if (warm != nullptr && !warm->truths.empty()) {
    // Truths-only seed: stand in for the median initialization.
    result.truths = warm->truths;
  } else {
    // Initialize truths at per-object medians (the CATD paper's robust
    // start). Columns are gathered across shards in global user order, so
    // the copy each median sorts is the flat matrix's column.
    const GatheredColumns columns = gather_object_values(shards, pool);
    result.truths.resize(N);
    for_each_range(pool, N, [&](std::size_t begin, std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) {
        const auto col = columns.column(n);
        DPTD_REQUIRE(!col.empty(), "Catd::run: object with no claims");
        result.truths[n] = median(col);
      }
    });
  }

  // Chi-squared quantiles depend only on each user's claim count; cache them.
  // Shard-local: a user's row lives wholly on one shard.
  std::vector<double> chi2(S, 0.0);
  catd_chi_squared(shards, pool, config_.significance, chi2);

  result.weights.assign(S, 0.0);
  for (std::size_t it = 1; it <= config_.convergence.max_iterations; ++it) {
    // Weight update: w_s = chi2_s / sum of squared residuals, each user's
    // residual accumulated from its own row in object order.
    catd_user_weights(shards, pool, chi2, result.truths, config_.min_residual,
                      result.weights);

    std::vector<double> next = weighted_aggregate(shards, result.weights, pool);
    const double change = truth_change(result.truths, next);
    result.truths = std::move(next);
    result.iterations = it;
    if (change < config_.convergence.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace dptd::truth
