// GTM — Gaussian Truth Model (Zhao & Han, QDB 2012), the second
// truth-discovery method evaluated in the paper (Fig. 5).
//
// Generative model:
//   truth_n     ~ N(mu0, sigma0^2)
//   quality     sigma_s^2 with inverse-Gamma(alpha, beta) prior
//   claim x_s_n ~ N(truth_n, sigma_s^2)
//
// EM: the E-step computes the Gaussian posterior of each truth given current
// qualities; the M-step is the MAP update of each user's variance.
// Claims are standardized per object before inference (as in the GTM paper)
// and truths are de-standardized on output.
#pragma once

#include "truth/interface.h"

namespace dptd::truth {

struct GtmConfig {
  double truth_prior_mean = 0.0;      ///< mu0 (in standardized space)
  double truth_prior_variance = 1.0;  ///< sigma0^2
  double quality_prior_alpha = 2.0;   ///< inverse-Gamma alpha
  double quality_prior_beta = 1.0;    ///< inverse-Gamma beta
  bool standardize = true;            ///< per-object z-scoring of claims
  ConvergenceCriteria convergence;
  /// Floor for user variances to keep precisions finite.
  double min_variance = 1e-9;
  /// Worker threads for the per-user M-step and per-object E-step. 1 = serial
  /// (default), 0 = hardware concurrency. Bit-identical for every value.
  std::size_t num_threads = 1;
};

class Gtm final : public TruthDiscovery {
 public:
  explicit Gtm(GtmConfig config = {});

  Result run(const data::ObservationMatrix& observations) const override;
  /// Warm seeding: non-empty weights (GTM's weights are per-user precisions)
  /// drive one posterior pass over this round's claims as the starting truth
  /// estimates; otherwise non-empty truths replace the per-object median
  /// initialization (standardized internally). An empty WarmStart reproduces
  /// run() exactly.
  Result run_warm(const data::ObservationMatrix& observations,
                  const WarmStart& warm) const override;
  bool supports_warm_start() const override { return true; }
  /// Per-shard sufficient statistics (per-object posterior precision sums and
  /// claim moments, per-user residual accumulators) reduced in fixed shard
  /// order; bitwise identical to the single-shard run for any shard count.
  Result run_sharded(const data::ShardedMatrix& shards,
                     const WarmStart& warm = {}) const override;
  std::string name() const override { return "gtm"; }

  const GtmConfig& config() const { return config_; }

 private:
  Result run_impl(const data::ShardedMatrix& shards,
                  const WarmStart* warm) const;
  GtmConfig config_;
};

}  // namespace dptd::truth
