// GTM — Gaussian Truth Model (Zhao & Han, QDB 2012), the second
// truth-discovery method evaluated in the paper (Fig. 5).
//
// Generative model:
//   truth_n     ~ N(mu0, sigma0^2)
//   quality     sigma_s^2 with inverse-Gamma(alpha, beta) prior
//   claim x_s_n ~ N(truth_n, sigma_s^2)
//
// EM: the E-step computes the Gaussian posterior of each truth given current
// qualities; the M-step is the MAP update of each user's variance.
// Claims are standardized per object before inference (as in the GTM paper)
// and truths are de-standardized on output.
#pragma once

#include <span>

#include "common/statistics.h"
#include "truth/interface.h"

namespace dptd::truth {

struct GtmConfig {
  double truth_prior_mean = 0.0;      ///< mu0 (in standardized space)
  double truth_prior_variance = 1.0;  ///< sigma0^2
  double quality_prior_alpha = 2.0;   ///< inverse-Gamma alpha
  double quality_prior_beta = 1.0;    ///< inverse-Gamma beta
  bool standardize = true;            ///< per-object z-scoring of claims
  ConvergenceCriteria convergence;
  /// Floor for user variances to keep precisions finite.
  double min_variance = 1e-9;
  /// Worker threads for the per-user M-step and per-object E-step. 1 = serial
  /// (default), 0 = hardware concurrency. Bit-identical for every value.
  std::size_t num_threads = 1;
};

class Gtm final : public TruthDiscovery {
 public:
  explicit Gtm(GtmConfig config = {});

  Result run(const data::ObservationMatrix& observations) const override;
  /// Warm seeding: non-empty weights (GTM's weights are per-user precisions)
  /// drive one posterior pass over this round's claims as the starting truth
  /// estimates; otherwise non-empty truths replace the per-object median
  /// initialization (standardized internally). An empty WarmStart reproduces
  /// run() exactly.
  Result run_warm(const data::ObservationMatrix& observations,
                  const WarmStart& warm) const override;
  bool supports_warm_start() const override { return true; }
  /// Per-shard sufficient statistics (per-object posterior precision sums and
  /// claim moments, per-user residual accumulators) reduced in fixed shard
  /// order; bitwise identical to the single-shard run for any shard count.
  Result run_sharded(const data::ShardedMatrix& shards,
                     const WarmStart& warm = {}) const override;
  std::string name() const override { return "gtm"; }

  const GtmConfig& config() const { return config_; }

 private:
  Result run_impl(const data::ShardedMatrix& shards,
                  const WarmStart* warm) const;
  GtmConfig config_;
};

// Shard-side kernels of one GTM iteration, shared between run_impl and the
// distributed coordinator (dist/). run_impl composes exactly these, so a
// remote execution that feeds them the same inputs lands on the same bits.

/// Per-object standardization shift/scale from fully merged claim moments
/// (z = (x - shift) / scale). Throws on an object with no claims; count < 2
/// or zero spread keeps scale at 1.0.
void gtm_standardization(std::span<const RunningStats> moments,
                         std::span<double> shift, std::span<double> scale);

/// Median of one object's standardized claims — the cold-start truth estimate.
double gtm_standardized_median(std::span<const double> column, double shift,
                               double scale);

/// M-step: MAP variance (quality) and precision per user given current truth
/// posteriors. Outputs are indexed by the matrix's own user ids. Shard-local.
void gtm_m_step(const data::ShardedMatrix& shards, ThreadPool* pool,
                const GtmConfig& config, std::span<const double> shift,
                std::span<const double> scale,
                std::span<const double> truth_mean,
                std::span<const double> truth_var, std::span<double> quality,
                std::span<double> precisions);

/// E-step fold: ADDS each claim's precision and precision-weighted
/// standardized value into per-object accumulators in canonical block order.
/// The caller pre-fills the accumulators with the prior terms (or the chain
/// state of preceding shards). `precisions` is indexed by the matrix's own
/// user ids.
void gtm_posterior_fold(const data::ShardedMatrix& shards, ThreadPool* pool,
                        std::span<const double> shift,
                        std::span<const double> scale,
                        std::span<const double> precisions,
                        std::span<double> precision_acc,
                        std::span<double> weighted_acc);

/// Finalizes fully folded posterior statistics into truth_mean/truth_var.
void gtm_posterior_from_stats(std::span<const double> precision_acc,
                              std::span<const double> weighted_acc,
                              std::span<double> truth_mean,
                              std::span<double> truth_var,
                              ThreadPool* pool = nullptr);

}  // namespace dptd::truth
