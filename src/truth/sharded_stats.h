// Mergeable sufficient statistics for sharded truth discovery.
//
// Every per-object quantity the iterative methods need (weighted sums,
// claim counts, claim moments, Gaussian-posterior precisions) is expressed as
// a fold over *canonical user blocks* (data::ShardPlan::block_size users per
// block): claims are summed flat in user order within a block, and block
// partials are chained in ascending block order —
//
//   out[n] = ((init[n] + block_0[n]) + block_1[n]) + ...
//
// The coordinator reduces shards in fixed (ascending) shard order, and shard
// boundaries are block-aligned, so the chain — and therefore every bit of
// the result — is identical for any shard count, mirroring the 1-vs-N-thread
// determinism guarantee of the flat kernels. Per-user quantities (losses,
// residuals, qualities) touch only the owning shard's row and need no merge.
//
// In-process, "shard sends statistics to the coordinator" is fused into a
// direct accumulation pass per shard; the communication a distributed
// deployment would pay is O(num_objects) per iteration, not O(nnz).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/statistics.h"
#include "common/thread_pool.h"
#include "data/sharding.h"

namespace dptd::truth {

/// Folds V per-claim contributions into per-object accumulators in canonical
/// block order. `emit(global_user, object, value, contrib)` fills the V
/// contributions of one claim; they are ADDED into `out[v][object]` (callers
/// pre-initialize with zeros or prior terms). If `counts` is non-null, the
/// per-object claim count is added into it. Deterministic and bitwise
/// identical for any shard count and any `pool` size.
template <std::size_t V, typename Emit>
void fold_object_stats(const data::ShardedMatrix& m, ThreadPool* pool,
                       const Emit& emit, const std::array<double*, V>& out,
                       std::size_t* counts = nullptr) {
  const std::size_t block_size = m.plan().block_size;
  for (std::size_t s = 0; s < m.num_shards(); ++s) {
    const data::ObservationMatrix& shard = m.shard(s);
    const std::size_t base = m.user_base(s);
    shard.ensure_object_index();
    // Parallel across objects; shards are reduced in ascending order, so the
    // fold chain per object is independent of the shard count.
    for_each_range(pool, m.num_objects(), [&](std::size_t begin,
                                              std::size_t end) {
      std::array<double, V> contrib{};
      for (std::size_t n = begin; n < end; ++n) {
        const auto col = shard.object_entries(n);
        if (col.empty()) continue;
        if (counts != nullptr) counts[n] += col.size();
        std::array<double, V> acc;
        std::array<double, V> seg{};
        for (std::size_t v = 0; v < V; ++v) acc[v] = out[v][n];
        // Columns are user-ascending, so a segment ends exactly when the
        // local user id reaches the current block's end — one comparison per
        // claim, one division per segment.
        std::size_t block = (base + col.users[0]) / block_size;
        std::size_t block_end = (block + 1) * block_size - base;
        for (std::size_t i = 0; i < col.size(); ++i) {
          const std::size_t user = col.users[i];  // shard-local id
          if (user >= block_end) {
            for (std::size_t v = 0; v < V; ++v) {
              acc[v] += seg[v];
              seg[v] = 0.0;
            }
            block = (base + user) / block_size;
            block_end = (block + 1) * block_size - base;
          }
          emit(base + user, n, col.values[i], contrib);
          for (std::size_t v = 0; v < V; ++v) seg[v] += contrib[v];
        }
        for (std::size_t v = 0; v < V; ++v) out[v][n] = acc[v] + seg[v];
      }
    });
  }
}

/// Per-object claim moments (count/mean/variance) as a canonical block fold:
/// Welford accumulation flat within a block, RunningStats::merge across
/// blocks in ascending order. `out` must hold num_objects default-constructed
/// accumulators. Same determinism contract as fold_object_stats.
void fold_object_moments(const data::ShardedMatrix& m, ThreadPool* pool,
                         std::span<RunningStats> out);

/// Per-object claim values gathered across shards in global user order (the
/// exact column a single flat matrix would expose). Loop-invariant: used only
/// for initialization statistics that need whole columns (medians). In the
/// single-shard case the columns alias the shard's own CSC cache — no copy;
/// the view must then not outlive the matrix (callers use it within one run).
struct GatheredColumns {
  std::vector<std::size_t> offsets;  ///< size num_objects + 1 (materialized)
  std::vector<double> values;        ///< size nnz, column-major (materialized)
  const data::ObservationMatrix* aliased = nullptr;  ///< single-shard zero-copy

  std::span<const double> column(std::size_t object) const {
    if (aliased != nullptr) return aliased->object_entries(object).values;
    return std::span<const double>(values).subspan(
        offsets[object], offsets[object + 1] - offsets[object]);
  }
};
GatheredColumns gather_object_values(const data::ShardedMatrix& m,
                                     ThreadPool* pool);

/// Runs fn(global_user, row) for every user. Purely per-user state: nothing
/// to merge, so execution order is free. Iterates shard by shard — rows are
/// contiguous local ids with one base offset, no per-user routing math — and
/// parallelizes over each shard's users.
template <typename Fn>
void for_each_user_row(const data::ShardedMatrix& m, ThreadPool* pool,
                       const Fn& fn) {
  for (std::size_t s = 0; s < m.num_shards(); ++s) {
    const data::ObservationMatrix& shard = m.shard(s);
    const std::size_t base = m.user_base(s);
    for_each_range(pool, shard.num_users(),
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t local = begin; local < end; ++local) {
                       fn(base + local, shard.user_entries(local));
                     }
                   });
  }
}

/// Canonical block-chained sum of a per-user vector (e.g. CRH's total loss):
/// flat within each block of `block_size` users, block partials chained in
/// ascending order, starting from `init`. Independent of how users are
/// sharded: a shard holding a block-aligned slice continues the global chain
/// exactly by passing the running total of the preceding shards as `init` —
/// the primitive the distributed coordinator's loss collective is built on.
double block_chain_sum(std::span<const double> per_user,
                       std::size_t block_size, double init = 0.0);

}  // namespace dptd::truth
