#include "truth/categorical.h"

#include <cmath>

#include "common/check.h"

namespace dptd::truth {
namespace {

void check_num_labels(std::size_t num_labels) {
  DPTD_REQUIRE(num_labels >= 2 && num_labels <= kMaxBridgedLabels,
               "categorical bridge: num_labels out of range");
}

Result to_result(categorical::VotingResult vr) {
  Result out;
  out.truths.reserve(vr.truths.size());
  for (categorical::Label t : vr.truths) {
    out.truths.push_back(static_cast<double>(t));
  }
  out.weights = std::move(vr.weights);
  out.iterations = vr.iterations;
  out.converged = vr.converged;
  return out;
}

}  // namespace

bool is_label_value(double value, std::size_t num_labels) {
  return std::isfinite(value) && value >= 0.0 &&
         value < static_cast<double>(num_labels) &&
         value == std::floor(value);
}

std::size_t infer_num_labels(const data::ShardedMatrix& m) {
  double max_label = -1.0;
  for (std::size_t s = 0; s < m.num_shards(); ++s) {
    m.shard(s).for_each([&](std::size_t, std::size_t, double v) {
      if (is_label_value(v, kMaxBridgedLabels) && v > max_label) max_label = v;
    });
  }
  const auto inferred =
      max_label < 0.0 ? std::size_t{0} : static_cast<std::size_t>(max_label) + 1;
  return std::max<std::size_t>(inferred, 2);
}

categorical::LabelMatrix label_view(const data::ObservationMatrix& obs,
                                    std::size_t num_labels,
                                    std::size_t* dropped) {
  check_num_labels(num_labels);
  std::vector<std::vector<categorical::LabelMatrix::Entry>> rows(
      obs.num_users());
  for (std::size_t s = 0; s < obs.num_users(); ++s) {
    const auto row = obs.user_entries(s);
    rows[s].reserve(row.size());
    for (const data::ObservationMatrix::Entry& e : row) {
      if (!is_label_value(e.value, num_labels)) {
        if (dropped != nullptr) ++*dropped;
        continue;
      }
      rows[s].push_back({e.object, static_cast<categorical::Label>(e.value)});
    }
  }
  return categorical::LabelMatrix::from_rows(std::move(rows),
                                             obs.num_objects(), num_labels);
}

categorical::ShardedLabelMatrix label_view(const data::ShardedMatrix& m,
                                           std::size_t num_labels,
                                           std::size_t* dropped) {
  std::vector<categorical::LabelMatrix> shards;
  shards.reserve(m.num_shards());
  for (std::size_t s = 0; s < m.num_shards(); ++s) {
    shards.push_back(label_view(m.shard(s), num_labels, dropped));
  }
  return categorical::ShardedLabelMatrix::from_shards(
      m.plan(), std::move(shards), m.num_objects(), num_labels);
}

std::vector<categorical::Label> labels_from_doubles(
    std::span<const double> truths, std::size_t num_labels) {
  check_num_labels(num_labels);
  std::vector<categorical::Label> out;
  out.reserve(truths.size());
  for (double t : truths) {
    double rounded = std::isfinite(t) ? std::round(t) : 0.0;
    if (rounded < 0.0) rounded = 0.0;
    const double top = static_cast<double>(num_labels - 1);
    if (rounded > top) rounded = top;
    out.push_back(static_cast<categorical::Label>(rounded));
  }
  return out;
}

MajorityVote::MajorityVote(MajorityVoteConfig config) : config_(config) {
  if (config_.num_labels != 0) check_num_labels(config_.num_labels);
}

Result MajorityVote::run(const data::ObservationMatrix& observations) const {
  return run_sharded(data::ShardedMatrix::single(observations));
}

Result MajorityVote::run_sharded(const data::ShardedMatrix& shards,
                                 const WarmStart& warm) const {
  (void)warm;  // single pass: nothing to seed
  const std::size_t num_labels =
      config_.num_labels != 0 ? config_.num_labels : infer_num_labels(shards);
  const categorical::ShardedLabelMatrix view = label_view(shards, num_labels);
  RunPool pool(config_.num_threads);
  return to_result(categorical::majority_vote(view, pool.get()));
}

WeightedVote::WeightedVote(WeightedVoteConfig config) : config_(config) {
  if (config_.num_labels != 0) check_num_labels(config_.num_labels);
}

Result WeightedVote::run(const data::ObservationMatrix& observations) const {
  return run_sharded(data::ShardedMatrix::single(observations));
}

Result WeightedVote::run_warm(const data::ObservationMatrix& observations,
                              const WarmStart& warm) const {
  return run_sharded(data::ShardedMatrix::single(observations), warm);
}

Result WeightedVote::run_sharded(const data::ShardedMatrix& shards,
                                 const WarmStart& warm) const {
  validate_warm_start(shards.num_users(), shards.num_objects(), warm);
  const std::size_t num_labels =
      config_.num_labels != 0 ? config_.num_labels : infer_num_labels(shards);
  const categorical::ShardedLabelMatrix view = label_view(shards, num_labels);
  std::vector<categorical::Label> warm_truths;
  if (!warm.truths.empty()) {
    warm_truths = labels_from_doubles(warm.truths, num_labels);
  }
  RunPool pool(config_.num_threads);
  return to_result(categorical::weighted_vote(view, config_.voting, pool.get(),
                                              warm.weights, warm_truths));
}

}  // namespace dptd::truth
