#include "truth/interface.h"

#include <cmath>

#include "common/check.h"

namespace dptd::truth {

std::vector<double> Result::normalized_weights() const {
  double total = 0.0;
  for (double w : weights) total += w;
  std::vector<double> out(weights.size(), 0.0);
  if (total <= 0.0) return out;
  for (std::size_t s = 0; s < weights.size(); ++s) out[s] = weights[s] / total;
  return out;
}

std::vector<double> weighted_aggregate(const data::ObservationMatrix& obs,
                                       const std::vector<double>& weights) {
  DPTD_REQUIRE(weights.size() == obs.num_users(),
               "weighted_aggregate: weight vector size != num users");
  for (double w : weights) {
    DPTD_REQUIRE(std::isfinite(w) && w >= 0.0,
                 "weighted_aggregate: weights must be finite and >= 0");
  }
  std::vector<double> truths(obs.num_objects(), 0.0);
  std::vector<double> weight_sums(obs.num_objects(), 0.0);
  std::vector<double> plain_sums(obs.num_objects(), 0.0);
  std::vector<std::size_t> counts(obs.num_objects(), 0);

  obs.for_each([&](std::size_t s, std::size_t n, double v) {
    truths[n] += weights[s] * v;
    weight_sums[n] += weights[s];
    plain_sums[n] += v;
    ++counts[n];
  });

  for (std::size_t n = 0; n < obs.num_objects(); ++n) {
    DPTD_REQUIRE(counts[n] > 0, "weighted_aggregate: object with no claims");
    if (weight_sums[n] > 0.0) {
      truths[n] /= weight_sums[n];
    } else {
      // Every claimant has zero weight; fall back to the unweighted mean so
      // the object still gets a defined estimate.
      truths[n] = plain_sums[n] / static_cast<double>(counts[n]);
    }
  }
  return truths;
}

double truth_change(const std::vector<double>& a,
                    const std::vector<double>& b) {
  DPTD_REQUIRE(a.size() == b.size() && !a.empty(),
               "truth_change: size mismatch or empty");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

}  // namespace dptd::truth
