#include "truth/interface.h"

#include <cmath>

#include "common/check.h"
#include "truth/sharded_stats.h"

namespace dptd::truth {

std::vector<double> Result::normalized_weights() const {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    // No quality signal at all (every weight zero): the only distribution
    // that treats users consistently is the uniform one. Returning zeros
    // here would silently break "sums to 1" invariants downstream.
    return std::vector<double>(weights.size(),
                               weights.empty()
                                   ? 0.0
                                   : 1.0 / static_cast<double>(weights.size()));
  }
  std::vector<double> out(weights.size(), 0.0);
  for (std::size_t s = 0; s < weights.size(); ++s) out[s] = weights[s] / total;
  return out;
}

void validate_warm_start(std::size_t num_users, std::size_t num_objects,
                         const WarmStart& warm) {
  if (!warm.truths.empty()) {
    DPTD_REQUIRE(warm.truths.size() == num_objects,
                 "WarmStart: truths size != num objects");
    for (double t : warm.truths) {
      DPTD_REQUIRE(std::isfinite(t), "WarmStart: non-finite truth");
    }
  }
  if (!warm.weights.empty()) {
    DPTD_REQUIRE(warm.weights.size() == num_users,
                 "WarmStart: weights size != num users");
    for (double w : warm.weights) {
      DPTD_REQUIRE(std::isfinite(w) && w >= 0.0,
                   "WarmStart: weights must be finite and >= 0");
    }
  }
}

void validate_warm_start(const data::ObservationMatrix& observations,
                         const WarmStart& warm) {
  validate_warm_start(observations.num_users(), observations.num_objects(),
                      warm);
}

Result TruthDiscovery::run_sharded(const data::ShardedMatrix& shards,
                                   const WarmStart& warm) const {
  return run_warm(shards.concatenated(), warm);
}

void weighted_aggregate_fold(const data::ShardedMatrix& shards,
                             const std::vector<double>& weights,
                             AggregateStats& acc, ThreadPool* pool) {
  const std::size_t N = shards.num_objects();
  DPTD_REQUIRE(weights.size() == shards.num_users(),
               "weighted_aggregate: weight vector size != num users");
  DPTD_REQUIRE(acc.weighted_sum.size() == N && acc.weight_sum.size() == N &&
                   acc.plain_sum.size() == N && acc.counts.size() == N,
               "weighted_aggregate_fold: accumulator size != num objects");
  fold_object_stats<3>(
      shards, pool,
      [&](std::size_t user, std::size_t, double value,
          std::array<double, 3>& contrib) {
        contrib[0] = weights[user] * value;
        contrib[1] = weights[user];
        contrib[2] = value;
      },
      {acc.weighted_sum.data(), acc.weight_sum.data(), acc.plain_sum.data()},
      acc.counts.data());
}

std::vector<double> truths_from_aggregate(const AggregateStats& acc,
                                          ThreadPool* pool) {
  const std::size_t N = acc.counts.size();
  std::vector<double> truths(N, 0.0);
  for_each_range(pool, N, [&](std::size_t begin, std::size_t end) {
    for (std::size_t n = begin; n < end; ++n) {
      DPTD_REQUIRE(acc.counts[n] > 0,
                   "weighted_aggregate: object with no claims");
      if (acc.weight_sum[n] > 0.0) {
        truths[n] = acc.weighted_sum[n] / acc.weight_sum[n];
      } else {
        // Every claimant has zero weight; fall back to the unweighted mean so
        // the object still gets a defined estimate.
        truths[n] = acc.plain_sum[n] / static_cast<double>(acc.counts[n]);
      }
    }
  });
  return truths;
}

std::vector<double> weighted_aggregate(const data::ShardedMatrix& shards,
                                       const std::vector<double>& weights,
                                       ThreadPool* pool) {
  for (double w : weights) {
    DPTD_REQUIRE(std::isfinite(w) && w >= 0.0,
                 "weighted_aggregate: weights must be finite and >= 0");
  }
  AggregateStats acc;
  acc.reset(shards.num_objects());
  weighted_aggregate_fold(shards, weights, acc, pool);
  return truths_from_aggregate(acc, pool);
}

std::vector<double> weighted_aggregate(const data::ObservationMatrix& obs,
                                       const std::vector<double>& weights,
                                       ThreadPool* pool) {
  return weighted_aggregate(data::ShardedMatrix::single(obs), weights, pool);
}

double truth_change(const std::vector<double>& a,
                    const std::vector<double>& b) {
  DPTD_REQUIRE(a.size() == b.size() && !a.empty(),
               "truth_change: size mismatch or empty");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

}  // namespace dptd::truth
