#include "truth/interface.h"

#include <cmath>

#include "common/check.h"

namespace dptd::truth {

std::vector<double> Result::normalized_weights() const {
  double total = 0.0;
  for (double w : weights) total += w;
  std::vector<double> out(weights.size(), 0.0);
  if (total <= 0.0) return out;
  for (std::size_t s = 0; s < weights.size(); ++s) out[s] = weights[s] / total;
  return out;
}

void validate_warm_start(const data::ObservationMatrix& observations,
                         const WarmStart& warm) {
  if (!warm.truths.empty()) {
    DPTD_REQUIRE(warm.truths.size() == observations.num_objects(),
                 "WarmStart: truths size != num objects");
    for (double t : warm.truths) {
      DPTD_REQUIRE(std::isfinite(t), "WarmStart: non-finite truth");
    }
  }
  if (!warm.weights.empty()) {
    DPTD_REQUIRE(warm.weights.size() == observations.num_users(),
                 "WarmStart: weights size != num users");
    for (double w : warm.weights) {
      DPTD_REQUIRE(std::isfinite(w) && w >= 0.0,
                   "WarmStart: weights must be finite and >= 0");
    }
  }
}

std::vector<double> weighted_aggregate(const data::ObservationMatrix& obs,
                                       const std::vector<double>& weights,
                                       ThreadPool* pool) {
  DPTD_REQUIRE(weights.size() == obs.num_users(),
               "weighted_aggregate: weight vector size != num users");
  for (double w : weights) {
    DPTD_REQUIRE(std::isfinite(w) && w >= 0.0,
                 "weighted_aggregate: weights must be finite and >= 0");
  }
  obs.ensure_object_index();
  std::vector<double> truths(obs.num_objects(), 0.0);
  for_each_range(pool, obs.num_objects(), [&](std::size_t begin,
                                              std::size_t end) {
    for (std::size_t n = begin; n < end; ++n) {
      const auto col = obs.object_entries(n);
      DPTD_REQUIRE(!col.empty(), "weighted_aggregate: object with no claims");
      double weighted_sum = 0.0;
      double weight_sum = 0.0;
      double plain_sum = 0.0;
      for (std::size_t i = 0; i < col.size(); ++i) {
        weighted_sum += weights[col.users[i]] * col.values[i];
        weight_sum += weights[col.users[i]];
        plain_sum += col.values[i];
      }
      if (weight_sum > 0.0) {
        truths[n] = weighted_sum / weight_sum;
      } else {
        // Every claimant has zero weight; fall back to the unweighted mean so
        // the object still gets a defined estimate.
        truths[n] = plain_sum / static_cast<double>(col.size());
      }
    }
  });
  return truths;
}

double truth_change(const std::vector<double>& a,
                    const std::vector<double>& b) {
  DPTD_REQUIRE(a.size() == b.size() && !a.empty(),
               "truth_change: size mismatch or empty");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

}  // namespace dptd::truth
