// Naive aggregation baselines the paper compares against (mean, median):
// quality-blind, single-pass, uniform weights.
#pragma once

#include "truth/interface.h"

namespace dptd::truth {

class MeanAggregator final : public TruthDiscovery {
 public:
  /// 1 = serial (default), 0 = hardware concurrency. Bit-identical for
  /// every value (per-object accumulation order is fixed).
  explicit MeanAggregator(std::size_t num_threads = 1)
      : num_threads_(num_threads) {}

  Result run(const data::ObservationMatrix& observations) const override;
  Result run_sharded(const data::ShardedMatrix& shards,
                     const WarmStart& warm = {}) const override;
  std::string name() const override { return "mean"; }

 private:
  std::size_t num_threads_;
};

class MedianAggregator final : public TruthDiscovery {
 public:
  /// 1 = serial (default), 0 = hardware concurrency. Bit-identical for
  /// every value (each object's median is computed independently).
  explicit MedianAggregator(std::size_t num_threads = 1)
      : num_threads_(num_threads) {}

  Result run(const data::ObservationMatrix& observations) const override;
  Result run_sharded(const data::ShardedMatrix& shards,
                     const WarmStart& warm = {}) const override;
  std::string name() const override { return "median"; }

 private:
  std::size_t num_threads_;
};

}  // namespace dptd::truth
