// Naive aggregation baselines the paper compares against (mean, median):
// quality-blind, single-pass, uniform weights.
#pragma once

#include "truth/interface.h"

namespace dptd::truth {

class MeanAggregator final : public TruthDiscovery {
 public:
  Result run(const data::ObservationMatrix& observations) const override;
  std::string name() const override { return "mean"; }
};

class MedianAggregator final : public TruthDiscovery {
 public:
  Result run(const data::ObservationMatrix& observations) const override;
  std::string name() const override { return "median"; }
};

}  // namespace dptd::truth
