#include "truth/registry.h"

#include "common/check.h"
#include "truth/baselines.h"
#include "truth/catd.h"
#include "truth/categorical.h"
#include "truth/crh.h"
#include "truth/gtm.h"

namespace dptd::truth {

std::unique_ptr<TruthDiscovery> make_method(
    const std::string& name, const ConvergenceCriteria& convergence,
    std::size_t num_threads) {
  if (name == "crh") {
    CrhConfig config;
    config.convergence = convergence;
    config.num_threads = num_threads;
    return std::make_unique<Crh>(config);
  }
  if (name == "gtm") {
    GtmConfig config;
    config.convergence = convergence;
    config.num_threads = num_threads;
    return std::make_unique<Gtm>(config);
  }
  if (name == "catd") {
    CatdConfig config;
    config.convergence = convergence;
    config.num_threads = num_threads;
    return std::make_unique<Catd>(config);
  }
  if (name == "mean") return std::make_unique<MeanAggregator>(num_threads);
  if (name == "median") return std::make_unique<MedianAggregator>(num_threads);
  if (name == "majority") {
    MajorityVoteConfig config;
    config.num_threads = num_threads;
    return std::make_unique<MajorityVote>(config);
  }
  if (name == "vote") {
    WeightedVoteConfig config;
    config.voting.max_iterations = convergence.max_iterations;
    config.num_threads = num_threads;
    return std::make_unique<WeightedVote>(config);
  }
  DPTD_REQUIRE(false, "unknown truth-discovery method: " + name);
  return nullptr;
}

std::vector<std::string> method_names() {
  return {"crh", "gtm", "catd", "mean", "median"};
}

std::vector<std::string> categorical_method_names() {
  return {"majority", "vote"};
}

bool method_supports_warm_start(const std::string& name) {
  return make_method(name)->supports_warm_start();
}

}  // namespace dptd::truth
