#include "truth/sharded_stats.h"

#include "common/check.h"

namespace dptd::truth {

void fold_object_moments(const data::ShardedMatrix& m, ThreadPool* pool,
                         std::span<RunningStats> out) {
  DPTD_REQUIRE(out.size() == m.num_objects(),
               "fold_object_moments: output size != num objects");
  const std::size_t block_size = m.plan().block_size;
  for (std::size_t s = 0; s < m.num_shards(); ++s) {
    const data::ObservationMatrix& shard = m.shard(s);
    const std::size_t base = m.user_base(s);
    shard.ensure_object_index();
    for_each_range(pool, m.num_objects(), [&](std::size_t begin,
                                              std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) {
        const auto col = shard.object_entries(n);
        if (col.empty()) continue;
        RunningStats acc = out[n];
        RunningStats seg;
        std::size_t block = (base + col.users[0]) / block_size;
        std::size_t block_end = (block + 1) * block_size - base;
        for (std::size_t i = 0; i < col.size(); ++i) {
          const std::size_t user = col.users[i];  // shard-local id
          if (user >= block_end) {
            acc.merge(seg);
            seg = RunningStats();
            block = (base + user) / block_size;
            block_end = (block + 1) * block_size - base;
          }
          seg.add(col.values[i]);
        }
        acc.merge(seg);
        out[n] = acc;
      }
    });
  }
}

GatheredColumns gather_object_values(const data::ShardedMatrix& m,
                                     ThreadPool* pool) {
  const std::size_t N = m.num_objects();
  GatheredColumns out;
  if (m.num_shards() == 1) {
    // The lone shard's CSC cache already holds every column in user order;
    // alias it instead of copying nnz values.
    m.shard(0).ensure_object_index();
    out.aliased = &m.shard(0);
    return out;
  }
  out.offsets.assign(N + 1, 0);
  for (std::size_t n = 0; n < N; ++n) {
    out.offsets[n + 1] = out.offsets[n] + m.object_observation_count(n);
  }
  out.values.resize(out.offsets[N]);
  // Shards appended in ascending order reproduce the flat matrix's columns:
  // shard user ranges are contiguous and ascending, and each shard's column
  // fragment is already sorted by (local, hence global) user id.
  std::vector<std::size_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (std::size_t s = 0; s < m.num_shards(); ++s) {
    const data::ObservationMatrix& shard = m.shard(s);
    shard.ensure_object_index();
    for_each_range(pool, N, [&](std::size_t begin, std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) {
        const auto col = shard.object_entries(n);
        for (std::size_t i = 0; i < col.size(); ++i) {
          out.values[cursor[n] + i] = col.values[i];
        }
        cursor[n] += col.size();
      }
    });
  }
  return out;
}

double block_chain_sum(std::span<const double> per_user,
                       std::size_t block_size, double init) {
  DPTD_REQUIRE(block_size > 0, "block_chain_sum: block_size must be positive");
  double acc = init;
  for (std::size_t begin = 0; begin < per_user.size(); begin += block_size) {
    const std::size_t end = std::min(begin + block_size, per_user.size());
    double seg = 0.0;
    for (std::size_t i = begin; i < end; ++i) seg += per_user[i];
    acc += seg;
  }
  return acc;
}

}  // namespace dptd::truth
