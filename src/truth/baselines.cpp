#include "truth/baselines.h"

#include "common/check.h"
#include "common/statistics.h"

namespace dptd::truth {

Result MeanAggregator::run(const data::ObservationMatrix& obs) const {
  RunPool pool(num_threads_);
  Result result;
  result.weights.assign(obs.num_users(), 1.0);
  result.truths = weighted_aggregate(obs, result.weights, pool.get());
  result.iterations = 1;
  result.converged = true;
  return result;
}

Result MedianAggregator::run(const data::ObservationMatrix& obs) const {
  RunPool run_pool(num_threads_);
  obs.ensure_object_index();
  Result result;
  result.weights.assign(obs.num_users(), 1.0);
  result.truths.resize(obs.num_objects());
  for_each_range(run_pool.get(), obs.num_objects(),
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t n = begin; n < end; ++n) {
                     const auto col = obs.object_entries(n);
                     DPTD_REQUIRE(!col.empty(),
                                  "MedianAggregator: object with no claims");
                     result.truths[n] = median(col.values);
                   }
                 });
  result.iterations = 1;
  result.converged = true;
  return result;
}

}  // namespace dptd::truth
