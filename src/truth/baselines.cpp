#include "truth/baselines.h"

#include "common/check.h"
#include "common/statistics.h"
#include "truth/sharded_stats.h"

namespace dptd::truth {

Result MeanAggregator::run(const data::ObservationMatrix& obs) const {
  return run_sharded(data::ShardedMatrix::single(obs));
}

Result MeanAggregator::run_sharded(const data::ShardedMatrix& shards,
                                   const WarmStart& warm) const {
  (void)warm;  // single-pass baseline: no state to seed
  RunPool pool(num_threads_);
  Result result;
  result.weights.assign(shards.num_users(), 1.0);
  result.truths = weighted_aggregate(shards, result.weights, pool.get());
  result.iterations = 1;
  result.converged = true;
  return result;
}

Result MedianAggregator::run(const data::ObservationMatrix& obs) const {
  return run_sharded(data::ShardedMatrix::single(obs));
}

Result MedianAggregator::run_sharded(const data::ShardedMatrix& shards,
                                     const WarmStart& warm) const {
  (void)warm;  // single-pass baseline: no state to seed
  RunPool run_pool(num_threads_);
  ThreadPool* pool = run_pool.get();
  Result result;
  result.weights.assign(shards.num_users(), 1.0);
  result.truths.resize(shards.num_objects());
  const GatheredColumns columns = gather_object_values(shards, pool);
  for_each_range(pool, shards.num_objects(),
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t n = begin; n < end; ++n) {
                     const auto col = columns.column(n);
                     DPTD_REQUIRE(!col.empty(),
                                  "MedianAggregator: object with no claims");
                     result.truths[n] = median(col);
                   }
                 });
  result.iterations = 1;
  result.converged = true;
  return result;
}

}  // namespace dptd::truth
