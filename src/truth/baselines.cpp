#include "truth/baselines.h"

#include "common/check.h"
#include "common/statistics.h"

namespace dptd::truth {

Result MeanAggregator::run(const data::ObservationMatrix& obs) const {
  Result result;
  result.weights.assign(obs.num_users(), 1.0);
  result.truths = weighted_aggregate(obs, result.weights);
  result.iterations = 1;
  result.converged = true;
  return result;
}

Result MedianAggregator::run(const data::ObservationMatrix& obs) const {
  Result result;
  result.weights.assign(obs.num_users(), 1.0);
  result.truths.resize(obs.num_objects());
  for (std::size_t n = 0; n < obs.num_objects(); ++n) {
    const std::vector<double> values = obs.object_values(n);
    DPTD_REQUIRE(!values.empty(), "MedianAggregator: object with no claims");
    result.truths[n] = median(values);
  }
  result.iterations = 1;
  result.converged = true;
  return result;
}

}  // namespace dptd::truth
