// CATD — Confidence-Aware Truth Discovery (Li et al., VLDB 2015).
//
// Beyond-paper extension: a third continuous-data truth-discovery method used
// to demonstrate that the perturbation mechanism is method-agnostic
// (DESIGN.md §4). CATD weights each user by the upper bound of the
// chi-squared confidence interval on their error variance, which makes it
// robust for long-tail users with few claims:
//
//   w_s = chi^2_{alpha/2, N_s} / sum_n (x_s_n - truth_n)^2
#pragma once

#include <span>

#include "truth/interface.h"

namespace dptd::truth {

struct CatdConfig {
  /// Significance level of the confidence interval (0.05 in the CATD paper).
  double significance = 0.05;
  ConvergenceCriteria convergence;
  /// Floor on a user's summed squared residual to avoid infinite weight.
  double min_residual = 1e-12;
  /// Worker threads for the per-user weight pass and per-object aggregation
  /// pass. 1 = serial (default), 0 = hardware concurrency. Bit-identical for
  /// every value.
  std::size_t num_threads = 1;
};

class Catd final : public TruthDiscovery {
 public:
  explicit Catd(CatdConfig config = {});

  Result run(const data::ObservationMatrix& observations) const override;
  /// Warm seeding: non-empty weights take precedence — they aggregate this
  /// round's claims into the starting truths; a truths-only seed replaces
  /// the per-object median initialization instead. An empty WarmStart
  /// reproduces run() exactly.
  Result run_warm(const data::ObservationMatrix& observations,
                  const WarmStart& warm) const override;
  bool supports_warm_start() const override { return true; }
  /// Per-shard sufficient statistics (per-object weighted sums, per-user
  /// chi-squared confidences and residual accumulators) reduced in fixed
  /// shard order; bitwise identical to the single-shard run for any shard
  /// count.
  Result run_sharded(const data::ShardedMatrix& shards,
                     const WarmStart& warm = {}) const override;
  std::string name() const override { return "catd"; }

  const CatdConfig& config() const { return config_; }

 private:
  Result run_impl(const data::ShardedMatrix& shards,
                  const WarmStart* warm) const;
  CatdConfig config_;
};

// Shard-side kernels of one CATD iteration, shared between run_impl and the
// distributed coordinator (dist/). run_impl composes exactly these, so a
// remote execution that feeds them the same inputs lands on the same bits.

/// Loop-invariant chi-squared quantiles per user (0 for empty rows), written
/// into `chi2` (indexed by the matrix's own user ids). Shard-local.
void catd_chi_squared(const data::ShardedMatrix& shards, ThreadPool* pool,
                      double significance, std::span<double> chi2);

/// Weight update w_s = chi2_s / max(sum of squared residuals, min_residual)
/// given current truths; empty rows get weight 0. Shard-local.
void catd_user_weights(const data::ShardedMatrix& shards, ThreadPool* pool,
                       std::span<const double> chi2,
                       const std::vector<double>& truths, double min_residual,
                       std::span<double> weights);

}  // namespace dptd::truth
