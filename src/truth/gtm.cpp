#include "truth/gtm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "truth/sharded_stats.h"

namespace dptd::truth {

Gtm::Gtm(GtmConfig config) : config_(config) {
  DPTD_REQUIRE(config_.truth_prior_variance > 0.0,
               "Gtm: truth prior variance must be positive");
  DPTD_REQUIRE(config_.quality_prior_alpha > 0.0 &&
                   config_.quality_prior_beta > 0.0,
               "Gtm: inverse-Gamma prior parameters must be positive");
  DPTD_REQUIRE(config_.convergence.max_iterations > 0,
               "Gtm: max_iterations must be positive");
  DPTD_REQUIRE(config_.min_variance > 0.0, "Gtm: min_variance must be positive");
}

Result Gtm::run(const data::ObservationMatrix& obs) const {
  return run_impl(data::ShardedMatrix::single(obs), nullptr);
}

Result Gtm::run_warm(const data::ObservationMatrix& obs,
                     const WarmStart& warm) const {
  validate_warm_start(obs, warm);
  return run_impl(data::ShardedMatrix::single(obs), &warm);
}

Result Gtm::run_sharded(const data::ShardedMatrix& shards,
                        const WarmStart& warm) const {
  validate_warm_start(shards.num_users(), shards.num_objects(), warm);
  return run_impl(shards, &warm);
}

void gtm_standardization(std::span<const RunningStats> moments,
                         std::span<double> shift, std::span<double> scale) {
  DPTD_REQUIRE(shift.size() == moments.size() && scale.size() == moments.size(),
               "gtm_standardization: output size != num objects");
  for (std::size_t n = 0; n < moments.size(); ++n) {
    DPTD_REQUIRE(moments[n].count() > 0, "Gtm::run: object with no claims");
    shift[n] = moments[n].mean();
    scale[n] = 1.0;
    if (moments[n].count() >= 2) {
      const double sd = moments[n].stddev();
      if (sd > 0.0) scale[n] = sd;
    }
  }
}

double gtm_standardized_median(std::span<const double> column, double shift,
                               double scale) {
  DPTD_REQUIRE(!column.empty(), "Gtm::run: object with no claims");
  std::vector<double> values(column.begin(), column.end());
  for (double& v : values) v = (v - shift) / scale;
  return median(values);
}

void gtm_m_step(const data::ShardedMatrix& shards, ThreadPool* pool,
                const GtmConfig& config, std::span<const double> shift,
                std::span<const double> scale,
                std::span<const double> truth_mean,
                std::span<const double> truth_var, std::span<double> quality,
                std::span<double> precisions) {
  // M-step: MAP variance per user given current truth posteriors.
  //   sigma_s^2 = (beta + 0.5 sum_n [(z - m_n)^2 + v_n]) / (alpha + 1 + N_s/2)
  // Each user's residual comes from its own row — shard-local, no merge.
  for_each_user_row(shards, pool, [&](std::size_t s, auto row) {
    if (row.empty()) {
      quality[s] = 1.0 / config.min_variance;  // no data: prior-dominated
      precisions[s] = 1.0 / quality[s];
      return;
    }
    double resid = 0.0;
    for (const auto& e : row) {
      const double z = (e.value - shift[e.object]) / scale[e.object];
      const double d = z - truth_mean[e.object];
      resid += d * d + truth_var[e.object];
    }
    const double numerator = config.quality_prior_beta + 0.5 * resid;
    const double denominator = config.quality_prior_alpha + 1.0 +
                               0.5 * static_cast<double>(row.size());
    quality[s] = std::max(numerator / denominator, config.min_variance);
    precisions[s] = 1.0 / quality[s];
  });
}

void gtm_posterior_fold(const data::ShardedMatrix& shards, ThreadPool* pool,
                        std::span<const double> shift,
                        std::span<const double> scale,
                        std::span<const double> precisions,
                        std::span<double> precision_acc,
                        std::span<double> weighted_acc) {
  fold_object_stats<2>(
      shards, pool,
      [&](std::size_t user, std::size_t n, double value,
          std::array<double, 2>& contrib) {
        const double p = precisions[user];
        contrib[0] = p;
        contrib[1] = p * ((value - shift[n]) / scale[n]);
      },
      {precision_acc.data(), weighted_acc.data()});
}

void gtm_posterior_from_stats(std::span<const double> precision_acc,
                              std::span<const double> weighted_acc,
                              std::span<double> truth_mean,
                              std::span<double> truth_var, ThreadPool* pool) {
  for_each_range(pool, truth_mean.size(),
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t n = begin; n < end; ++n) {
                     truth_mean[n] = weighted_acc[n] / precision_acc[n];
                     truth_var[n] = 1.0 / precision_acc[n];
                   }
                 });
}

Result Gtm::run_impl(const data::ShardedMatrix& shards,
                     const WarmStart* warm) const {
  const std::size_t S = shards.num_users();
  const std::size_t N = shards.num_objects();
  DPTD_REQUIRE(S > 0 && N > 0, "Gtm::run: empty observation matrix");
  RunPool run_pool(config_.num_threads);
  ThreadPool* pool = run_pool.get();

  // Per-object standardization: z = (x - mean_n) / sd_n. Loop-invariant, so
  // computed once as a block-chained moment fold (shard-count independent).
  std::vector<double> shift(N, 0.0);
  std::vector<double> scale(N, 1.0);
  if (config_.standardize) {
    std::vector<RunningStats> moments(N);
    fold_object_moments(shards, pool, moments);
    gtm_standardization(moments, shift, scale);
  }

  const double prior_precision = 1.0 / config_.truth_prior_variance;
  const double prior_weighted =
      config_.truth_prior_mean / config_.truth_prior_variance;

  // E-step as a sufficient-statistics fold: per-object precision and
  // precision-weighted sums start at the prior terms and accumulate
  // per-claim contributions in canonical block order.
  std::vector<double> precision(N, 0.0);
  std::vector<double> weighted_sum(N, 0.0);
  std::vector<double> truth_mean(N, 0.0);
  std::vector<double> truth_var(N, 0.0);
  const auto posterior_pass = [&](const std::vector<double>& precisions) {
    std::fill(precision.begin(), precision.end(), prior_precision);
    std::fill(weighted_sum.begin(), weighted_sum.end(), prior_weighted);
    gtm_posterior_fold(shards, pool, shift, scale, precisions, precision,
                       weighted_sum);
    gtm_posterior_from_stats(precision, weighted_sum, truth_mean, truth_var,
                             pool);
  };

  // Initialize truths at the per-object median (robust start), in
  // standardized space — or from the warm-start seed.
  if (warm != nullptr && !warm->weights.empty()) {
    // Seeded E-step: GTM's weights ARE per-user precisions (1/sigma_s^2),
    // so one posterior pass with the previous round's precisions over THIS
    // round's claims gives the starting truth estimates.
    posterior_pass(warm->weights);
  } else if (warm != nullptr && !warm->truths.empty()) {
    for (std::size_t n = 0; n < N; ++n) {
      truth_mean[n] = (warm->truths[n] - shift[n]) / scale[n];
    }
  } else {
    const GatheredColumns columns = gather_object_values(shards, pool);
    for_each_range(pool, N, [&](std::size_t begin, std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) {
        truth_mean[n] =
            gtm_standardized_median(columns.column(n), shift[n], scale[n]);
      }
    });
  }

  std::vector<double> quality(S, 1.0);    // sigma_s^2 in standardized space
  std::vector<double> precisions(S, 1.0); // 1 / quality, the E-step input
  std::vector<double> prev_truths = truth_mean;

  Result result;
  for (std::size_t it = 1; it <= config_.convergence.max_iterations; ++it) {
    gtm_m_step(shards, pool, config_, shift, scale, truth_mean, truth_var,
               quality, precisions);

    // E-step: Gaussian posterior of each truth from the merged per-object
    // precision statistics.
    posterior_pass(precisions);

    result.iterations = it;
    const double change = truth_change(prev_truths, truth_mean);
    prev_truths = truth_mean;
    if (change < config_.convergence.tolerance) {
      result.converged = true;
      break;
    }
  }

  // De-standardize truths; expose precisions as weights.
  result.truths.resize(N);
  for (std::size_t n = 0; n < N; ++n) {
    result.truths[n] = truth_mean[n] * scale[n] + shift[n];
  }
  result.weights.resize(S);
  for (std::size_t s = 0; s < S; ++s) result.weights[s] = 1.0 / quality[s];
  return result;
}

}  // namespace dptd::truth
