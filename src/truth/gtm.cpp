#include "truth/gtm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/statistics.h"

namespace dptd::truth {

Gtm::Gtm(GtmConfig config) : config_(config) {
  DPTD_REQUIRE(config_.truth_prior_variance > 0.0,
               "Gtm: truth prior variance must be positive");
  DPTD_REQUIRE(config_.quality_prior_alpha > 0.0 &&
                   config_.quality_prior_beta > 0.0,
               "Gtm: inverse-Gamma prior parameters must be positive");
  DPTD_REQUIRE(config_.convergence.max_iterations > 0,
               "Gtm: max_iterations must be positive");
  DPTD_REQUIRE(config_.min_variance > 0.0, "Gtm: min_variance must be positive");
}

Result Gtm::run(const data::ObservationMatrix& obs) const {
  return run_impl(obs, nullptr);
}

Result Gtm::run_warm(const data::ObservationMatrix& obs,
                     const WarmStart& warm) const {
  validate_warm_start(obs, warm);
  return run_impl(obs, &warm);
}

Result Gtm::run_impl(const data::ObservationMatrix& obs,
                     const WarmStart* warm) const {
  const std::size_t S = obs.num_users();
  const std::size_t N = obs.num_objects();
  DPTD_REQUIRE(S > 0 && N > 0, "Gtm::run: empty observation matrix");
  RunPool run_pool(config_.num_threads);
  ThreadPool* pool = run_pool.get();
  obs.ensure_object_index();

  // Per-object standardization: z = (x - mean_n) / sd_n. Loop-invariant, so
  // computed once from the column view (no per-object allocation).
  std::vector<double> shift(N, 0.0);
  std::vector<double> scale(N, 1.0);
  if (config_.standardize) {
    for_each_range(pool, N, [&](std::size_t begin, std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) {
        const auto col = obs.object_entries(n);
        DPTD_REQUIRE(!col.empty(), "Gtm::run: object with no claims");
        shift[n] = mean(col.values);
        if (col.size() >= 2) {
          const double sd = stddev(col.values);
          if (sd > 0.0) scale[n] = sd;
        }
      }
    });
  }
  const auto standardized = [&](std::size_t n, double v) {
    return (v - shift[n]) / scale[n];
  };

  // Initialize truths at the per-object median (robust start), in
  // standardized space — or from the warm-start seed.
  std::vector<double> truth_mean(N, 0.0);
  std::vector<double> truth_var(N, 0.0);
  if (warm != nullptr && !warm->weights.empty()) {
    // Seeded E-step: GTM's weights ARE per-user precisions (1/sigma_s^2),
    // so one posterior pass with the previous round's precisions over THIS
    // round's claims gives the starting truth estimates.
    for_each_range(pool, N, [&](std::size_t begin, std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) {
        double precision = 1.0 / config_.truth_prior_variance;
        double weighted_sum =
            config_.truth_prior_mean / config_.truth_prior_variance;
        const auto col = obs.object_entries(n);
        for (std::size_t i = 0; i < col.size(); ++i) {
          const double p = warm->weights[col.users[i]];
          precision += p;
          weighted_sum += p * standardized(n, col.values[i]);
        }
        truth_mean[n] = weighted_sum / precision;
        truth_var[n] = 1.0 / precision;
      }
    });
  } else if (warm != nullptr && !warm->truths.empty()) {
    for (std::size_t n = 0; n < N; ++n) {
      truth_mean[n] = standardized(n, warm->truths[n]);
    }
  } else {
    for_each_range(pool, N, [&](std::size_t begin, std::size_t end) {
      std::vector<double> values;  // per-shard scratch for the median copy
      for (std::size_t n = begin; n < end; ++n) {
        const auto col = obs.object_entries(n);
        values.assign(col.values.begin(), col.values.end());
        for (double& v : values) v = standardized(n, v);
        truth_mean[n] = median(values);
      }
    });
  }

  std::vector<double> quality(S, 1.0);  // sigma_s^2 in standardized space
  std::vector<double> prev_truths = truth_mean;

  Result result;
  for (std::size_t it = 1; it <= config_.convergence.max_iterations; ++it) {
    // M-step: MAP variance per user given current truth posteriors.
    //   sigma_s^2 = (beta + 0.5 sum_n [(z - m_n)^2 + v_n]) / (alpha + 1 + N_s/2)
    // Each user's residual comes from its own row in object order.
    for_each_range(pool, S, [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end; ++s) {
        const auto row = obs.user_entries(s);
        if (row.empty()) {
          quality[s] = 1.0 / config_.min_variance;  // no data: prior-dominated
          continue;
        }
        double resid = 0.0;
        for (const auto& e : row) {
          const double z = standardized(e.object, e.value);
          const double d = z - truth_mean[e.object];
          resid += d * d + truth_var[e.object];
        }
        const double numerator = config_.quality_prior_beta + 0.5 * resid;
        const double denominator = config_.quality_prior_alpha + 1.0 +
                                   0.5 * static_cast<double>(row.size());
        quality[s] = std::max(numerator / denominator, config_.min_variance);
      }
    });

    // E-step: Gaussian posterior of each truth, accumulated per object from
    // the column view in ascending user order.
    for_each_range(pool, N, [&](std::size_t begin, std::size_t end) {
      for (std::size_t n = begin; n < end; ++n) {
        double precision = 1.0 / config_.truth_prior_variance;
        double weighted_sum =
            config_.truth_prior_mean / config_.truth_prior_variance;
        const auto col = obs.object_entries(n);
        for (std::size_t i = 0; i < col.size(); ++i) {
          const double z = standardized(n, col.values[i]);
          const double p = 1.0 / quality[col.users[i]];
          precision += p;
          weighted_sum += p * z;
        }
        truth_mean[n] = weighted_sum / precision;
        truth_var[n] = 1.0 / precision;
      }
    });

    result.iterations = it;
    const double change = truth_change(prev_truths, truth_mean);
    prev_truths = truth_mean;
    if (change < config_.convergence.tolerance) {
      result.converged = true;
      break;
    }
  }

  // De-standardize truths; expose precisions as weights.
  result.truths.resize(N);
  for (std::size_t n = 0; n < N; ++n) {
    result.truths[n] = truth_mean[n] * scale[n] + shift[n];
  }
  result.weights.resize(S);
  for (std::size_t s = 0; s < S; ++s) result.weights[s] = 1.0 / quality[s];
  return result;
}

}  // namespace dptd::truth
