#include "truth/gtm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/statistics.h"

namespace dptd::truth {

Gtm::Gtm(GtmConfig config) : config_(config) {
  DPTD_REQUIRE(config_.truth_prior_variance > 0.0,
               "Gtm: truth prior variance must be positive");
  DPTD_REQUIRE(config_.quality_prior_alpha > 0.0 &&
                   config_.quality_prior_beta > 0.0,
               "Gtm: inverse-Gamma prior parameters must be positive");
  DPTD_REQUIRE(config_.convergence.max_iterations > 0,
               "Gtm: max_iterations must be positive");
  DPTD_REQUIRE(config_.min_variance > 0.0, "Gtm: min_variance must be positive");
}

Result Gtm::run(const data::ObservationMatrix& obs) const {
  const std::size_t S = obs.num_users();
  const std::size_t N = obs.num_objects();
  DPTD_REQUIRE(S > 0 && N > 0, "Gtm::run: empty observation matrix");

  // Per-object standardization: z = (x - mean_n) / sd_n.
  std::vector<double> shift(N, 0.0);
  std::vector<double> scale(N, 1.0);
  if (config_.standardize) {
    for (std::size_t n = 0; n < N; ++n) {
      const std::vector<double> values = obs.object_values(n);
      DPTD_REQUIRE(!values.empty(), "Gtm::run: object with no claims");
      shift[n] = mean(values);
      if (values.size() >= 2) {
        const double sd = stddev(values);
        if (sd > 0.0) scale[n] = sd;
      }
    }
  }
  const auto standardized = [&](std::size_t n, double v) {
    return (v - shift[n]) / scale[n];
  };

  // Initialize truths at the per-object median (robust start), in
  // standardized space.
  std::vector<double> truth_mean(N, 0.0);
  std::vector<double> truth_var(N, 0.0);
  for (std::size_t n = 0; n < N; ++n) {
    std::vector<double> values = obs.object_values(n);
    for (double& v : values) v = standardized(n, v);
    truth_mean[n] = median(values);
  }

  std::vector<double> quality(S, 1.0);  // sigma_s^2 in standardized space
  std::vector<double> prev_truths = truth_mean;

  Result result;
  for (std::size_t it = 1; it <= config_.convergence.max_iterations; ++it) {
    // M-step: MAP variance per user given current truth posteriors.
    //   sigma_s^2 = (beta + 0.5 sum_n [(z - m_n)^2 + v_n]) / (alpha + 1 + N_s/2)
    std::vector<double> resid(S, 0.0);
    std::vector<std::size_t> counts(S, 0);
    obs.for_each([&](std::size_t s, std::size_t n, double v) {
      const double z = standardized(n, v);
      const double d = z - truth_mean[n];
      resid[s] += d * d + truth_var[n];
      ++counts[s];
    });
    for (std::size_t s = 0; s < S; ++s) {
      if (counts[s] == 0) {
        quality[s] = 1.0 / config_.min_variance;  // no data: prior-dominated
        continue;
      }
      const double numerator = config_.quality_prior_beta + 0.5 * resid[s];
      const double denominator = config_.quality_prior_alpha + 1.0 +
                                 0.5 * static_cast<double>(counts[s]);
      quality[s] = std::max(numerator / denominator, config_.min_variance);
    }

    // E-step: Gaussian posterior of each truth.
    std::vector<double> precision(N, 1.0 / config_.truth_prior_variance);
    std::vector<double> weighted_sum(
        N, config_.truth_prior_mean / config_.truth_prior_variance);
    obs.for_each([&](std::size_t s, std::size_t n, double v) {
      const double z = standardized(n, v);
      const double p = 1.0 / quality[s];
      precision[n] += p;
      weighted_sum[n] += p * z;
    });
    for (std::size_t n = 0; n < N; ++n) {
      truth_mean[n] = weighted_sum[n] / precision[n];
      truth_var[n] = 1.0 / precision[n];
    }

    result.iterations = it;
    const double change = truth_change(prev_truths, truth_mean);
    prev_truths = truth_mean;
    if (change < config_.convergence.tolerance) {
      result.converged = true;
      break;
    }
  }

  // De-standardize truths; expose precisions as weights.
  result.truths.resize(N);
  for (std::size_t n = 0; n < N; ++n) {
    result.truths[n] = truth_mean[n] * scale[n] + shift[n];
  }
  result.weights.resize(S);
  for (std::size_t s = 0; s < S; ++s) result.weights[s] = 1.0 / quality[s];
  return result;
}

}  // namespace dptd::truth
