#include "truth/crh.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/statistics.h"

namespace dptd::truth {
namespace {

/// Per-object claim standard deviations for the normalized loss; zero-spread
/// objects get 1.0 so they contribute raw squared distance.
std::vector<double> object_stddevs(const data::ObservationMatrix& obs) {
  std::vector<double> out(obs.num_objects(), 1.0);
  for (std::size_t n = 0; n < obs.num_objects(); ++n) {
    const std::vector<double> values = obs.object_values(n);
    if (values.size() >= 2) {
      const double sd = stddev(values);
      if (sd > 0.0) out[n] = sd;
    }
  }
  return out;
}

}  // namespace

Crh::Crh(CrhConfig config) : config_(config) {
  DPTD_REQUIRE(config_.convergence.tolerance > 0.0,
               "Crh: tolerance must be positive");
  DPTD_REQUIRE(config_.convergence.max_iterations > 0,
               "Crh: max_iterations must be positive");
  DPTD_REQUIRE(config_.min_loss_fraction > 0.0 &&
                   config_.min_loss_fraction < 1.0,
               "Crh: min_loss_fraction must be in (0,1)");
}

std::vector<double> Crh::estimate_weights(
    const data::ObservationMatrix& obs,
    const std::vector<double>& truths) const {
  DPTD_REQUIRE(truths.size() == obs.num_objects(),
               "Crh::estimate_weights: truths size != num objects");
  const std::vector<double> stddevs =
      config_.loss == CrhLoss::kNormalizedSquared
          ? object_stddevs(obs)
          : std::vector<double>(obs.num_objects(), 1.0);

  std::vector<double> losses(obs.num_users(), 0.0);
  obs.for_each([&](std::size_t s, std::size_t n, double v) {
    const double diff = v - truths[n];
    switch (config_.loss) {
      case CrhLoss::kNormalizedSquared:
        losses[s] += diff * diff / stddevs[n];
        break;
      case CrhLoss::kSquared:
        losses[s] += diff * diff;
        break;
      case CrhLoss::kAbsolute:
        losses[s] += std::abs(diff);
        break;
    }
  });

  double total = 0.0;
  for (double l : losses) total += l;

  std::vector<double> weights(obs.num_users(), 0.0);
  if (total <= 0.0) {
    // All users agree exactly with the truths: equal (unit) weights.
    std::fill(weights.begin(), weights.end(), 1.0);
    return weights;
  }
  for (std::size_t s = 0; s < obs.num_users(); ++s) {
    const double fraction =
        std::max(losses[s] / total, config_.min_loss_fraction);
    // Eq. (3): w_s = -log(loss_s / total); non-negative since fraction <= 1.
    weights[s] = -std::log(fraction);
  }
  return weights;
}

Result Crh::run(const data::ObservationMatrix& obs) const {
  DPTD_REQUIRE(obs.num_users() > 0 && obs.num_objects() > 0,
               "Crh::run: empty observation matrix");

  Result result;
  // Algorithm 1 line 1: uniform weight initialization.
  result.weights.assign(obs.num_users(), 1.0);
  result.truths = weighted_aggregate(obs, result.weights);

  for (std::size_t it = 1; it <= config_.convergence.max_iterations; ++it) {
    result.weights = estimate_weights(obs, result.truths);
    std::vector<double> next = weighted_aggregate(obs, result.weights);
    const double change = truth_change(result.truths, next);
    result.truths = std::move(next);
    result.iterations = it;
    if (change < config_.convergence.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace dptd::truth
