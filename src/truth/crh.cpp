#include "truth/crh.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "truth/sharded_stats.h"

namespace dptd::truth {
namespace {

/// Per-object claim standard deviations for the normalized loss. Depends only
/// on the observations — run() computes it once and reuses it every
/// iteration. Block-chained Welford merge: identical for any shard count.
std::vector<double> object_stddevs(const data::ShardedMatrix& shards,
                                   ThreadPool* pool) {
  std::vector<RunningStats> moments(shards.num_objects());
  fold_object_moments(shards, pool, moments);
  return crh_stddevs_from_moments(moments);
}

}  // namespace

std::vector<double> crh_stddevs_from_moments(
    std::span<const RunningStats> moments) {
  std::vector<double> out(moments.size(), 1.0);
  for (std::size_t n = 0; n < out.size(); ++n) {
    if (moments[n].count() >= 2) {
      const double sd = moments[n].stddev();
      if (sd > 0.0) out[n] = sd;
    }
  }
  return out;
}

void crh_user_losses(const data::ShardedMatrix& shards, ThreadPool* pool,
                     CrhLoss loss_kind, const std::vector<double>& truths,
                     const std::vector<double>& stddevs,
                     std::span<double> losses) {
  DPTD_REQUIRE(losses.size() == shards.num_users(),
               "crh_user_losses: losses size != num users");
  for_each_user_row(shards, pool, [&](std::size_t s, auto row) {
    double loss = 0.0;
    for (const auto& e : row) {
      const double diff = e.value - truths[e.object];
      switch (loss_kind) {
        case CrhLoss::kNormalizedSquared:
          loss += diff * diff / stddevs[e.object];
          break;
        case CrhLoss::kSquared:
          loss += diff * diff;
          break;
        case CrhLoss::kAbsolute:
          loss += std::abs(diff);
          break;
      }
    }
    losses[s] = loss;
  });
}

std::vector<double> crh_weights_from_losses(std::span<const double> losses,
                                            double total,
                                            double min_loss_fraction) {
  std::vector<double> weights(losses.size(), 0.0);
  if (total <= 0.0) {
    // All users agree exactly with the truths: equal (unit) weights.
    std::fill(weights.begin(), weights.end(), 1.0);
    return weights;
  }
  for (std::size_t s = 0; s < losses.size(); ++s) {
    const double fraction = std::max(losses[s] / total, min_loss_fraction);
    // Eq. (3): w_s = -log(loss_s / total); non-negative since fraction <= 1.
    weights[s] = -std::log(fraction);
  }
  return weights;
}

Crh::Crh(CrhConfig config) : config_(config) {
  DPTD_REQUIRE(config_.convergence.tolerance > 0.0,
               "Crh: tolerance must be positive");
  DPTD_REQUIRE(config_.convergence.max_iterations > 0,
               "Crh: max_iterations must be positive");
  DPTD_REQUIRE(config_.min_loss_fraction > 0.0 &&
                   config_.min_loss_fraction < 1.0,
               "Crh: min_loss_fraction must be in (0,1)");
}

std::vector<double> Crh::estimate_weights_with_stddevs(
    const data::ShardedMatrix& shards, const std::vector<double>& truths,
    const std::vector<double>& stddevs, ThreadPool* pool) const {
  DPTD_REQUIRE(truths.size() == shards.num_objects(),
               "Crh::estimate_weights: truths size != num objects");

  // Per-user loss pass: each user's loss is accumulated from its own row in
  // object order — shard-local, nothing to merge.
  std::vector<double> losses(shards.num_users(), 0.0);
  crh_user_losses(shards, pool, config_.loss, truths, stddevs, losses);

  // The only cross-user scalar: canonical block-chained sum, so the total is
  // identical however users are sharded.
  const double total = block_chain_sum(losses, shards.plan().block_size);

  return crh_weights_from_losses(losses, total, config_.min_loss_fraction);
}

std::vector<double> Crh::estimate_weights(
    const data::ObservationMatrix& obs,
    const std::vector<double>& truths) const {
  const data::ShardedMatrix shards = data::ShardedMatrix::single(obs);
  RunPool pool(config_.num_threads);
  const std::vector<double> stddevs =
      config_.loss == CrhLoss::kNormalizedSquared
          ? object_stddevs(shards, pool.get())
          : std::vector<double>(obs.num_objects(), 1.0);
  return estimate_weights_with_stddevs(shards, truths, stddevs, pool.get());
}

Result Crh::run(const data::ObservationMatrix& obs) const {
  return run_impl(data::ShardedMatrix::single(obs), nullptr);
}

Result Crh::run_warm(const data::ObservationMatrix& obs,
                     const WarmStart& warm) const {
  validate_warm_start(obs, warm);
  return run_impl(data::ShardedMatrix::single(obs), &warm);
}

Result Crh::run_sharded(const data::ShardedMatrix& shards,
                        const WarmStart& warm) const {
  validate_warm_start(shards.num_users(), shards.num_objects(), warm);
  return run_impl(shards, &warm);
}

Result Crh::run_impl(const data::ShardedMatrix& shards,
                     const WarmStart* warm) const {
  DPTD_REQUIRE(shards.num_users() > 0 && shards.num_objects() > 0,
               "Crh::run: empty observation matrix");
  RunPool pool(config_.num_threads);

  // Loop-invariant per-object statistics, hoisted out of the iterations.
  const std::vector<double> stddevs =
      config_.loss == CrhLoss::kNormalizedSquared
          ? object_stddevs(shards, pool.get())
          : std::vector<double>(shards.num_objects(), 1.0);

  Result result;
  if (warm != nullptr && !warm->weights.empty()) {
    // Seeded start: the previous round's converged weights aggregate THIS
    // round's claims, which lands far closer to the new fixed point than
    // stale truths would (user quality persists across rounds; truths and
    // noise do not).
    result.weights = warm->weights;
    result.truths = weighted_aggregate(shards, result.weights, pool.get());
  } else if (warm != nullptr && !warm->truths.empty()) {
    // Truths-only seed: enter the loop at the weight update.
    result.truths = warm->truths;
    result.weights.assign(shards.num_users(), 1.0);
  } else {
    // Algorithm 1 line 1: uniform weight initialization.
    result.weights.assign(shards.num_users(), 1.0);
    result.truths = weighted_aggregate(shards, result.weights, pool.get());
  }

  for (std::size_t it = 1; it <= config_.convergence.max_iterations; ++it) {
    result.weights = estimate_weights_with_stddevs(shards, result.truths,
                                                   stddevs, pool.get());
    std::vector<double> next =
        weighted_aggregate(shards, result.weights, pool.get());
    const double change = truth_change(result.truths, next);
    result.truths = std::move(next);
    result.iterations = it;
    if (change < config_.convergence.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace dptd::truth
