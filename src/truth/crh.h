// CRH — Conflict Resolution on Heterogeneous data (Li et al., SIGMOD 2014),
// the truth-discovery method the paper instantiates in Eq. (3).
//
// Iterates:
//   truths  <- weighted mean of claims               (paper Eq. 1)
//   w_s     <- -log( loss_s / sum_{s'} loss_{s'} )   (paper Eq. 3)
// where loss_s = sum_n d(x_s_n, truth_n) over the user's present claims.
#pragma once

#include <span>

#include "common/statistics.h"
#include "truth/interface.h"

namespace dptd::truth {

/// Distance function d(.) in the weight update (paper Eq. 2/3).
enum class CrhLoss {
  /// (x - t)^2 / stddev_n — CRH's continuous loss, scale-invariant across
  /// objects (stddev_n = std of the claims on object n). Default.
  kNormalizedSquared,
  kSquared,   ///< (x - t)^2
  kAbsolute,  ///< |x - t|
};

struct CrhConfig {
  CrhLoss loss = CrhLoss::kNormalizedSquared;
  ConvergenceCriteria convergence;
  /// Lower clamp on a user's share of total loss before the log, preventing
  /// infinite weight for a user whose claims coincide exactly with truths.
  double min_loss_fraction = 1e-12;
  /// Worker threads for the per-user weight pass and per-object aggregation
  /// pass. 1 = serial (default), 0 = hardware concurrency. Results are
  /// bit-identical for every value (fixed-order per-shard reduction).
  std::size_t num_threads = 1;
};

class Crh final : public TruthDiscovery {
 public:
  explicit Crh(CrhConfig config = {});

  Result run(const data::ObservationMatrix& observations) const override;
  /// Warm seeding: non-empty weights take precedence — the previous round's
  /// converged weights aggregate this round's claims as the loop's starting
  /// point (user quality persists across rounds; truths and noise do not).
  /// Truths-only seeds enter the loop at the weight update instead. An empty
  /// WarmStart reproduces run() exactly.
  Result run_warm(const data::ObservationMatrix& observations,
                  const WarmStart& warm) const override;
  bool supports_warm_start() const override { return true; }
  /// Per-shard sufficient statistics (per-object weighted sums and claim
  /// moments, per-user loss accumulators) reduced in fixed shard order;
  /// bitwise identical to the single-shard run for any shard count.
  Result run_sharded(const data::ShardedMatrix& shards,
                     const WarmStart& warm = {}) const override;
  std::string name() const override { return "crh"; }

  const CrhConfig& config() const { return config_; }

  /// One weight-estimation step given current truths (exposed for tests and
  /// for the Fig. 7 weight-comparison experiment). Recomputes the per-object
  /// stddev cache on every call; run() hoists it out of the iteration loop.
  std::vector<double> estimate_weights(const data::ObservationMatrix& obs,
                                       const std::vector<double>& truths) const;

 private:
  Result run_impl(const data::ShardedMatrix& shards,
                  const WarmStart* warm) const;
  std::vector<double> estimate_weights_with_stddevs(
      const data::ShardedMatrix& shards, const std::vector<double>& truths,
      const std::vector<double>& stddevs, ThreadPool* pool) const;

  CrhConfig config_;
};

// Shard-side kernels of one CRH iteration, shared between run_impl and the
// distributed coordinator (dist/). run_impl composes exactly these, so a
// remote execution that feeds them the same inputs lands on the same bits.

/// Per-object stddevs for the normalized loss from fully merged claim
/// moments; count < 2 or zero spread yields 1.0 (raw squared distance).
std::vector<double> crh_stddevs_from_moments(
    std::span<const RunningStats> moments);

/// Per-user losses sum_n d(x_s_n, truth_n) given current truths, written into
/// `losses` (indexed by the matrix's own user ids). Shard-local: each user's
/// row lives wholly on one shard, nothing to merge.
void crh_user_losses(const data::ShardedMatrix& shards, ThreadPool* pool,
                     CrhLoss loss, const std::vector<double>& truths,
                     const std::vector<double>& stddevs,
                     std::span<double> losses);

/// Eq. (3) weights from per-user losses and the (block-chained) global loss
/// total: w_s = -log(max(loss_s / total, min_loss_fraction)), or all-ones
/// when total <= 0. Slice-wise: a shard applies it to its own losses once
/// the coordinator broadcasts the total.
std::vector<double> crh_weights_from_losses(std::span<const double> losses,
                                            double total,
                                            double min_loss_fraction);

}  // namespace dptd::truth
