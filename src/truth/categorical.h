// Categorical voting behind the TruthDiscovery interface.
//
// The production layers — registry, warm-started campaigns, sharded servers,
// the distributed coordinator — all speak truth::TruthDiscovery over
// continuous ObservationMatrix claims. This bridge lets those layers run
// categorical campaigns unchanged: label ids ride as exact small doubles in
// the observation matrices, each shard's sub-matrix is reinterpreted as a
// sparse LabelMatrix view (out-of-domain values sanitize-dropped, the same
// rule on every layer so in-process and distributed runs agree bitwise), and
// the mergeable voting kernels of categorical/voting.h do the aggregation in
// canonical block order. Truths come back as label ids in doubles — exact,
// since every label id is far below 2^53.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "categorical/label_matrix.h"
#include "categorical/label_sharding.h"
#include "categorical/voting.h"
#include "truth/interface.h"

namespace dptd::truth {

/// Largest label alphabet the bridge accepts; label ids stay exact in a
/// double and per-object histograms stay small.
inline constexpr std::size_t kMaxBridgedLabels = 1u << 20;

/// True iff `value` encodes a valid label id below `num_labels`: finite,
/// integral, and in [0, num_labels).
bool is_label_value(double value, std::size_t num_labels);

/// Smallest consistent alphabet for a matrix of label-encoded doubles:
/// max valid label id + 1, clamped to >= 2. Values that encode no label at
/// all (non-integral, negative, or >= kMaxBridgedLabels) are ignored — they
/// are dropped by the view below. Scans every shard, so the result is
/// independent of the shard count.
std::size_t infer_num_labels(const data::ShardedMatrix& m);

/// Reinterprets one shard's observation sub-matrix as a sparse LabelMatrix.
/// Claims whose value fails is_label_value are dropped (counted into
/// `dropped` when non-null) — sanitize, never abort, exactly like report
/// ingestion. O(nnz), straight into from_rows.
categorical::LabelMatrix label_view(const data::ObservationMatrix& obs,
                                    std::size_t num_labels,
                                    std::size_t* dropped = nullptr);

/// The sharded composition of label_view: same plan, every shard converted,
/// drops summed. The categorical kernels over this view are bitwise
/// identical for any shard count.
categorical::ShardedLabelMatrix label_view(const data::ShardedMatrix& m,
                                           std::size_t num_labels,
                                           std::size_t* dropped = nullptr);

/// Converts a warm-start truth vector (doubles) back to label ids: rounded
/// to nearest and clamped into [0, num_labels). Seeds from a previous
/// categorical round are exact label doubles, so this is the identity on the
/// happy path; the clamp keeps hostile/stale seeds from derailing a round.
std::vector<categorical::Label> labels_from_doubles(
    std::span<const double> truths, std::size_t num_labels);

struct MajorityVoteConfig {
  /// Label alphabet size; 0 infers it from the data (see infer_num_labels).
  std::size_t num_labels = 0;
  std::size_t num_threads = 1;  ///< 1 = serial, 0 = hardware concurrency
};

/// Plurality vote (quality-blind, single pass) behind TruthDiscovery.
class MajorityVote : public TruthDiscovery {
 public:
  explicit MajorityVote(MajorityVoteConfig config = {});

  Result run(const data::ObservationMatrix& observations) const override;
  Result run_sharded(const data::ShardedMatrix& shards,
                     const WarmStart& warm = {}) const override;
  std::string name() const override { return "majority"; }

 private:
  MajorityVoteConfig config_;
};

struct WeightedVoteConfig {
  /// Label alphabet size; 0 infers it from the data (see infer_num_labels).
  std::size_t num_labels = 0;
  categorical::WeightedVotingConfig voting;
  std::size_t num_threads = 1;  ///< 1 = serial, 0 = hardware concurrency
};

/// CRH-style iterative weighted voting behind TruthDiscovery. Warm starts
/// honor both halves of the seed: prior weights feed the first aggregation,
/// prior truths skip it entirely.
class WeightedVote : public TruthDiscovery {
 public:
  explicit WeightedVote(WeightedVoteConfig config = {});

  Result run(const data::ObservationMatrix& observations) const override;
  Result run_warm(const data::ObservationMatrix& observations,
                  const WarmStart& warm) const override;
  bool supports_warm_start() const override { return true; }
  Result run_sharded(const data::ShardedMatrix& shards,
                     const WarmStart& warm = {}) const override;
  std::string name() const override { return "vote"; }

  const WeightedVoteConfig& config() const { return config_; }

 private:
  WeightedVoteConfig config_;
};

}  // namespace dptd::truth
