// Factory for truth-discovery methods by name, used by examples/benches to
// switch methods from the command line.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "truth/interface.h"

namespace dptd::truth {

/// Builds "crh", "gtm", "catd", "mean", "median", or the categorical
/// bridges "majority"/"vote", with the given convergence criteria (ignored
/// by single-pass baselines; "vote" uses max_iterations only) and worker
/// thread count (1 = serial, 0 = hardware concurrency; every method is
/// bit-identical across thread counts). The iterative methods ("crh",
/// "gtm", "catd", "vote") honor TruthDiscovery::run_warm for multi-round
/// warm starts; the single-pass baselines ignore the seed. Throws
/// std::invalid_argument for unknown names.
std::unique_ptr<TruthDiscovery> make_method(
    const std::string& name, const ConvergenceCriteria& convergence = {},
    std::size_t num_threads = 1);

/// Continuous-data names accepted by make_method, in display order. Drivers
/// that sweep methods over real-valued datasets iterate this list.
std::vector<std::string> method_names();

/// Categorical names accepted by make_method ("majority", "vote"), in
/// display order. These expect label-id claims (small exact doubles) — see
/// truth/categorical.h.
std::vector<std::string> categorical_method_names();

/// True when `name` builds a method whose run_warm honors the seed
/// (supports_warm_start()); false for baselines. Throws for unknown names.
bool method_supports_warm_start(const std::string& name);

}  // namespace dptd::truth
