// Factory for truth-discovery methods by name, used by examples/benches to
// switch methods from the command line.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "truth/interface.h"

namespace dptd::truth {

/// Builds "crh", "gtm", "catd", "mean" or "median" with the given
/// convergence criteria (ignored by single-pass baselines) and worker thread
/// count (1 = serial, 0 = hardware concurrency; every method is bit-identical
/// across thread counts). The iterative methods ("crh", "gtm", "catd") honor
/// TruthDiscovery::run_warm for multi-round warm starts; the single-pass
/// baselines ignore the seed. Throws std::invalid_argument for unknown names.
std::unique_ptr<TruthDiscovery> make_method(
    const std::string& name, const ConvergenceCriteria& convergence = {},
    std::size_t num_threads = 1);

/// Names accepted by make_method, in display order.
std::vector<std::string> method_names();

/// True when `name` builds a method whose run_warm honors the seed
/// (supports_warm_start()); false for baselines. Throws for unknown names.
bool method_supports_warm_start(const std::string& name);

}  // namespace dptd::truth
