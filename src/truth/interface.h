// Common interface for truth-discovery algorithms over continuous data.
//
// All methods follow the two-principle template the paper summarizes in
// Algorithm 1: iterate (a) weighted aggregation of claims into truths and
// (b) re-estimation of user weights from distance-to-truths.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/dataset.h"
#include "data/sharding.h"

namespace dptd::truth {

/// Convergence control shared by iterative methods.
struct ConvergenceCriteria {
  /// Stop when the mean absolute change of the aggregated results between two
  /// consecutive iterations falls below this threshold (paper §3.1 / §5.3).
  double tolerance = 1e-6;
  std::size_t max_iterations = 100;
};

struct Result {
  std::vector<double> truths;   ///< one aggregated value per object
  std::vector<double> weights;  ///< one non-negative weight per user
  std::size_t iterations = 0;   ///< iterations actually executed
  bool converged = false;       ///< true if tolerance was reached

  /// Weights rescaled to sum to 1 (convenience for comparisons/plots). When
  /// every weight is zero (e.g. a degenerate one-iteration run), there is no
  /// quality signal to rescale, so the uniform distribution is returned
  /// instead of dividing by zero.
  std::vector<double> normalized_weights() const;
};

/// Seed state for iterative methods in multi-round deployments: round r+1
/// starts from round r's converged truths/weights instead of the cold
/// initialization, so on slowly-drifting truths it converges in fewer
/// iterations. Either vector may be empty (= no seed for that half).
struct WarmStart {
  std::vector<double> truths;   ///< size num_objects, or empty
  std::vector<double> weights;  ///< size num_users, or empty

  bool empty() const { return truths.empty() && weights.empty(); }
};

/// Throws std::invalid_argument if a non-empty warm-start vector has the
/// wrong size, a non-finite entry, or (for weights) a negative entry.
void validate_warm_start(std::size_t num_users, std::size_t num_objects,
                         const WarmStart& warm);
void validate_warm_start(const data::ObservationMatrix& observations,
                         const WarmStart& warm);

class TruthDiscovery {
 public:
  virtual ~TruthDiscovery() = default;

  /// Runs the method on an observation matrix. Every object must have at
  /// least one present observation; throws std::invalid_argument otherwise.
  virtual Result run(const data::ObservationMatrix& observations) const = 0;

  /// Runs the method seeded from `warm`. The default ignores the seed and
  /// forwards to run() (single-pass baselines have no state to seed);
  /// iterative methods override it. An empty WarmStart must reproduce run()
  /// bit-for-bit.
  virtual Result run_warm(const data::ObservationMatrix& observations,
                          const WarmStart& warm) const {
    (void)warm;
    return run(observations);
  }

  /// True when run_warm() actually honors the seed.
  virtual bool supports_warm_start() const { return false; }

  /// Runs the method over a user-sharded matrix, reducing per-shard
  /// sufficient statistics in fixed shard order. For the registered methods
  /// the result is bitwise identical to the single-shard run for any shard
  /// count with the same canonical block size. The default concatenates the
  /// shards and forwards to run_warm() (correct, but pays a full copy).
  virtual Result run_sharded(const data::ShardedMatrix& shards,
                             const WarmStart& warm = {}) const;

  /// Stable identifier ("crh", "gtm", "catd", "mean", "median").
  virtual std::string name() const = 0;
};

/// Weighted aggregation step shared by all methods (paper Eq. 1):
/// truths[n] = sum_s w_s x_s_n / sum_s w_s over present cells.
/// Users with zero weight are kept (contribute nothing unless every weight on
/// an object is zero, in which case the unweighted mean is used).
///
/// Accumulated as a canonical block-chained fold over the CSC-by-object
/// views (see truth/sharded_stats.h), so results are bit-identical for any
/// pool size (including serial) and any shard count.
std::vector<double> weighted_aggregate(const data::ObservationMatrix& obs,
                                       const std::vector<double>& weights,
                                       ThreadPool* pool = nullptr);
std::vector<double> weighted_aggregate(const data::ShardedMatrix& shards,
                                       const std::vector<double>& weights,
                                       ThreadPool* pool = nullptr);

/// Sufficient statistics of one weighted-aggregation pass. The fold is
/// resumable: weighted_aggregate_fold ADDS into an existing accumulator in
/// canonical block order, so a distributed deployment can thread the same
/// accumulator through block-aligned shards (each continuing where the
/// previous one stopped) and land on the exact bits of the in-process pass.
struct AggregateStats {
  std::vector<double> weighted_sum;  ///< sum_s w_s x_s_n per object
  std::vector<double> weight_sum;    ///< sum_s w_s per object
  std::vector<double> plain_sum;     ///< sum_s x_s_n per object
  std::vector<std::size_t> counts;   ///< claims per object

  void reset(std::size_t num_objects) {
    weighted_sum.assign(num_objects, 0.0);
    weight_sum.assign(num_objects, 0.0);
    plain_sum.assign(num_objects, 0.0);
    counts.assign(num_objects, 0);
  }
};

/// Folds `shards`' claims into `acc` (which the caller resets or pre-loads
/// with the chain state of preceding shards). `weights` is indexed by the
/// matrix's own user ids — global for a partitioned matrix, local for a
/// shard's borrowed single() view.
void weighted_aggregate_fold(const data::ShardedMatrix& shards,
                             const std::vector<double>& weights,
                             AggregateStats& acc, ThreadPool* pool = nullptr);

/// Finalizes a fully folded accumulator into truths: weighted mean per
/// object, falling back to the plain mean when every claimant has zero
/// weight. Throws on an object with no claims.
std::vector<double> truths_from_aggregate(const AggregateStats& acc,
                                          ThreadPool* pool = nullptr);

/// Pool shared by one truth-discovery run. Owns nothing when the configured
/// thread count is 1 (serial); otherwise owns a ThreadPool for the run's
/// lifetime (0 = hardware concurrency).
class RunPool {
 public:
  explicit RunPool(std::size_t num_threads) {
    if (num_threads != 1) pool_.emplace(num_threads);
  }
  ThreadPool* get() { return pool_ ? &*pool_ : nullptr; }

 private:
  std::optional<ThreadPool> pool_;
};

/// Mean absolute change between two truth vectors (convergence metric).
double truth_change(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace dptd::truth
