// Umbrella header for the dptd library: differentially private truth
// discovery for crowd sensing systems (Li et al., ICDCS 2020).
//
// Quick tour:
//   data::generate_synthetic / floorplan::generate_floorplan_scenario — data
//   core::UserSampledGaussianMechanism — Algorithm 2's local perturbation
//   truth::make_method("crh" | "gtm" | "catd" | "mean" | "median")
//   core::run_private_truth_discovery — perturb + aggregate, one call
//   core::feasible_noise_window — Theorem 4.9's utility/privacy window
//   crowd::run_session — the same protocol over a simulated network
#pragma once

#include "common/check.h"          // IWYU pragma: export
#include "common/cli.h"            // IWYU pragma: export
#include "common/csv.h"            // IWYU pragma: export
#include "common/distributions.h"  // IWYU pragma: export
#include "common/json_writer.h"    // IWYU pragma: export
#include "common/logging.h"        // IWYU pragma: export
#include "common/quadrature.h"     // IWYU pragma: export
#include "common/rng.h"            // IWYU pragma: export
#include "common/serialize.h"      // IWYU pragma: export
#include "common/special_functions.h"  // IWYU pragma: export
#include "common/statistics.h"     // IWYU pragma: export
#include "common/stopwatch.h"      // IWYU pragma: export
#include "common/thread_pool.h"    // IWYU pragma: export
#include "core/accountant.h"       // IWYU pragma: export
#include "core/bounds.h"           // IWYU pragma: export
#include "core/empirical.h"        // IWYU pragma: export
#include "core/mechanism.h"        // IWYU pragma: export
#include "core/pipeline.h"         // IWYU pragma: export
#include "core/sensitivity.h"      // IWYU pragma: export
#include "crowd/campaign.h"        // IWYU pragma: export
#include "crowd/device.h"          // IWYU pragma: export
#include "crowd/protocol.h"        // IWYU pragma: export
#include "crowd/server.h"          // IWYU pragma: export
#include "crowd/session.h"         // IWYU pragma: export
#include "crowd/sharded_server.h"  // IWYU pragma: export
#include "data/builder.h"          // IWYU pragma: export
#include "data/dataset.h"          // IWYU pragma: export
#include "data/io.h"               // IWYU pragma: export
#include "data/sharding.h"         // IWYU pragma: export
#include "data/synthetic.h"        // IWYU pragma: export
#include "eval/figures.h"          // IWYU pragma: export
#include "eval/metrics.h"          // IWYU pragma: export
#include "eval/report.h"           // IWYU pragma: export
#include "floorplan/hallway.h"     // IWYU pragma: export
#include "floorplan/walker.h"      // IWYU pragma: export
#include "net/network.h"           // IWYU pragma: export
#include "net/simulator.h"         // IWYU pragma: export
#include "truth/baselines.h"       // IWYU pragma: export
#include "truth/catd.h"            // IWYU pragma: export
#include "truth/crh.h"             // IWYU pragma: export
#include "truth/gtm.h"             // IWYU pragma: export
#include "truth/interface.h"       // IWYU pragma: export
#include "truth/registry.h"        // IWYU pragma: export
#include "truth/sharded_stats.h"   // IWYU pragma: export
