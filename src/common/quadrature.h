// 1-D numerical integration used by the theory module to evaluate the exact
// moments E[Y], E[Y^2] of Y = sqrt(sigma_s^2 + sigma_s'^2 + delta_s'^2) whose
// closed form in the paper contains typos (see DESIGN.md).
#pragma once

#include <functional>

namespace dptd {

/// Adaptive Simpson on [a, b] to absolute tolerance `tol`.
double integrate_adaptive_simpson(const std::function<double(double)>& f,
                                  double a, double b, double tol = 1e-10,
                                  int max_depth = 30);

/// Semi-infinite integral \int_a^inf f(x) dx via the substitution
/// x = a + t/(1-t) mapped onto adaptive Simpson on [0,1).
double integrate_to_infinity(const std::function<double(double)>& f, double a,
                             double tol = 1e-10);

/// Fixed-order Gauss–Legendre on [a, b] (orders 8, 16, 32 supported);
/// used as a fast inner rule for smooth integrands.
double integrate_gauss_legendre(const std::function<double(double)>& f,
                                double a, double b, int order = 32);

}  // namespace dptd
