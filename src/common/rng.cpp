#include "common/rng.h"

namespace dptd {

void Xoshiro256StarStar::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      next();
    }
  }
  state_ = acc;
}

Xoshiro256StarStar Xoshiro256StarStar::split(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through SplitMix64 so distinct
  // ids give statistically independent generators.
  SplitMix64 sm(state_[0] ^ (state_[3] * 0x9e3779b97f4a7c15ULL) ^
                (stream_id + 0x243f6a8885a308d3ULL));
  Xoshiro256StarStar child(sm.next());
  return child;
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) {
  SplitMix64 sm(root);
  std::uint64_t h = sm.next();
  h ^= SplitMix64(a ^ 0x2545f4914f6cdd1dULL).next();
  h = (h ^ (h >> 29)) * 0xff51afd7ed558ccdULL;
  h ^= SplitMix64(b ^ 0x9e3779b97f4a7c15ULL).next();
  h = (h ^ (h >> 32)) * 0xc4ceb9fe1a85ec53ULL;
  h ^= SplitMix64(c ^ 0x452821e638d01377ULL).next();
  return h ^ (h >> 31);
}

}  // namespace dptd
