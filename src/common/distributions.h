// Manual distribution samplers over dptd::Rng.
//
// The privacy mechanism's noise path must be reproducible bit-for-bit from a
// seed, so every sampler here is implemented by hand (no <random>
// distributions, whose algorithms are implementation-defined).
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace dptd {

/// Uniform double in [0, 1) with 53 random bits.
double uniform01(Rng& rng);

/// Uniform double in (0, 1]; never returns 0 (safe for log()).
double uniform01_open_left(Rng& rng);

/// Uniform double in [lo, hi).
double uniform(Rng& rng, double lo, double hi);

/// Uniform integer in [0, n). Unbiased (rejection on the tail).
std::uint64_t uniform_index(Rng& rng, std::uint64_t n);

/// Standard normal via Marsaglia polar method (default normal sampler).
double standard_normal(Rng& rng);

/// Standard normal via Box–Muller; retained for cross-validation tests.
double standard_normal_box_muller(Rng& rng);

/// N(mean, stddev^2). `stddev >= 0`; stddev == 0 returns `mean` exactly.
double normal(Rng& rng, double mean, double stddev);

/// Exponential with *rate* lambda (mean 1/lambda) via inversion.
double exponential(Rng& rng, double rate);

/// Laplace(mu, b) via inversion; the classical eps-LDP baseline noise.
double laplace(Rng& rng, double mu, double scale);

/// Gamma(shape k, scale theta) via Marsaglia–Tsang (k >= 1) with the usual
/// boost for k < 1. Used to sample sums-of-exponentials in tests.
double gamma(Rng& rng, double shape, double scale);

/// Bernoulli(p).
bool bernoulli(Rng& rng, double p);

/// Samples an integer from {0,..,n-1} with the given (unnormalized,
/// non-negative) weights. O(n); used in adversary/workload models.
std::size_t weighted_index(Rng& rng, const double* weights, std::size_t n);

/// Stateful Gaussian sampler that caches the spare variate from the polar
/// method; exactly reproduces repeated standard_normal() calls is NOT the
/// goal — this is the fast path for bulk noise generation.
class GaussianSampler {
 public:
  explicit GaussianSampler(Rng rng) : rng_(rng) {}

  double operator()(double mean, double stddev);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace dptd
