#include "common/csv.h"

#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace dptd {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::format_double(double v) {
  char buf[32];
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf, static_cast<std::size_t>(n));
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

void CsvWriter::write_numeric_row(const std::vector<double>& values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) *out_ << ',';
    *out_ << format_double(values[i]);
  }
  *out_ << '\n';
}

std::vector<std::vector<std::string>> CsvReader::parse(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;
  char c = 0;
  while (in.get(c)) {
    row_started = true;
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        row.push_back(std::move(field));
        field.clear();
        rows.push_back(std::move(row));
        row.clear();
        row_started = false;
        break;
      default:
        field += c;
    }
  }
  DPTD_REQUIRE(!in_quotes, "CSV: unterminated quoted field");
  if (row_started) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::string> CsvReader::parse_line(const std::string& line) {
  DPTD_REQUIRE(line.find('\n') == std::string::npos,
               "parse_line: line contains a newline");
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  DPTD_REQUIRE(!in_quotes, "CSV: unterminated quoted field");
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace dptd
