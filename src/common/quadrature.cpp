#include "common/quadrature.h"

#include <array>
#include <cmath>

#include "common/check.h"

namespace dptd {
namespace {

double simpson(double a, double fa, double b, double fb, double fm) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(const std::function<double(double)>& f, double a, double fa,
                double b, double fb, double m, double fm, double whole,
                double tol, int depth) {
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(a, fa, m, fm, flm);
  const double right = simpson(m, fm, b, fb, frm);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(f, a, fa, m, fm, lm, flm, left, tol / 2.0, depth - 1) +
         adaptive(f, m, fm, b, fb, rm, frm, right, tol / 2.0, depth - 1);
}

// 16-point Gauss–Legendre nodes/weights on [-1, 1] (symmetric half listed).
constexpr std::array<double, 8> kGl16X = {
    0.0950125098376374, 0.2816035507792589, 0.4580167776572274,
    0.6178762444026438, 0.7554044083550030, 0.8656312023878318,
    0.9445750230732326, 0.9894009349916499};
constexpr std::array<double, 8> kGl16W = {
    0.1894506104550685, 0.1826034150449236, 0.1691565193950025,
    0.1495959888165767, 0.1246289712555339, 0.0951585116824928,
    0.0622535239386479, 0.0271524594117541};

// 32-point rule.
constexpr std::array<double, 16> kGl32X = {
    0.0483076656877383, 0.1444719615827965, 0.2392873622521371,
    0.3318686022821277, 0.4213512761306353, 0.5068999089322294,
    0.5877157572407623, 0.6630442669302152, 0.7321821187402897,
    0.7944837959679424, 0.8493676137325700, 0.8963211557660521,
    0.9349060759377397, 0.9647622555875064, 0.9856115115452684,
    0.9972638618494816};
constexpr std::array<double, 16> kGl32W = {
    0.0965400885147278, 0.0956387200792749, 0.0938443990808046,
    0.0911738786957639, 0.0876520930044038, 0.0833119242269467,
    0.0781938957870703, 0.0723457941088485, 0.0658222227763618,
    0.0586840934785355, 0.0509980592623762, 0.0428358980222267,
    0.0342738629130214, 0.0253920653092621, 0.0162743947309057,
    0.0070186100094701};

// 8-point rule.
constexpr std::array<double, 4> kGl8X = {0.1834346424956498, 0.5255324099163290,
                                         0.7966664774136267,
                                         0.9602898564975363};
constexpr std::array<double, 4> kGl8W = {0.3626837833783620, 0.3137066458778873,
                                         0.2223810344533745,
                                         0.1012285362903763};

template <std::size_t K>
double gl(const std::function<double(double)>& f, double a, double b,
          const std::array<double, K>& xs, const std::array<double, K>& ws) {
  const double c = 0.5 * (a + b);
  const double h = 0.5 * (b - a);
  double sum = 0.0;
  for (std::size_t i = 0; i < K; ++i) {
    sum += ws[i] * (f(c + h * xs[i]) + f(c - h * xs[i]));
  }
  return h * sum;
}

}  // namespace

double integrate_adaptive_simpson(const std::function<double(double)>& f,
                                  double a, double b, double tol,
                                  int max_depth) {
  DPTD_REQUIRE(a <= b, "integrate: a must be <= b");
  DPTD_REQUIRE(tol > 0.0, "integrate: tol must be positive");
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(m);
  const double whole = simpson(a, fa, b, fb, fm);
  return adaptive(f, a, fa, b, fb, m, fm, whole, tol, max_depth);
}

double integrate_to_infinity(const std::function<double(double)>& f, double a,
                             double tol) {
  // x = a + t/(1-t), dx = dt/(1-t)^2, t in [0,1).
  const auto g = [&f, a](double t) {
    const double om = 1.0 - t;
    const double x = a + t / om;
    return f(x) / (om * om);
  };
  // Stop slightly short of 1 (x_max ~ 1e7); the integrand must decay fast
  // enough that the missing tail is below tol (true for the
  // exponential-tailed densities this is used on).
  return integrate_adaptive_simpson(g, 0.0, 1.0 - 1e-7, tol);
}

double integrate_gauss_legendre(const std::function<double(double)>& f,
                                double a, double b, int order) {
  DPTD_REQUIRE(a <= b, "integrate: a must be <= b");
  switch (order) {
    case 8:
      return gl(f, a, b, kGl8X, kGl8W);
    case 16:
      return gl(f, a, b, kGl16X, kGl16W);
    case 32:
      return gl(f, a, b, kGl32X, kGl32W);
    default:
      DPTD_REQUIRE(false, "integrate_gauss_legendre: order must be 8/16/32");
      return 0.0;
  }
}

}  // namespace dptd
