#include "common/json_writer.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/check.h"

namespace dptd {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (expecting_value_) {
    expecting_value_ = false;
    return;
  }
  DPTD_CHECK(stack_.empty() || stack_.back() == Scope::kArray,
             "JSON: value inside an object requires key()");
  DPTD_CHECK(!(stack_.empty() && wrote_root_), "JSON: multiple root values");
  if (!stack_.empty()) {
    if (!first_in_scope_.back()) *out_ << ',';
    first_in_scope_.back() = false;
  }
  if (stack_.empty()) wrote_root_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  *out_ << '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DPTD_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
             "JSON: end_object without matching begin_object");
  DPTD_CHECK(!expecting_value_, "JSON: key without value");
  stack_.pop_back();
  first_in_scope_.pop_back();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  *out_ << '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DPTD_CHECK(!stack_.empty() && stack_.back() == Scope::kArray,
             "JSON: end_array without matching begin_array");
  stack_.pop_back();
  first_in_scope_.pop_back();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  DPTD_CHECK(!stack_.empty() && stack_.back() == Scope::kObject,
             "JSON: key() outside an object");
  DPTD_CHECK(!expecting_value_, "JSON: consecutive keys");
  if (!first_in_scope_.back()) *out_ << ',';
  first_in_scope_.back() = false;
  *out_ << '"' << escape(k) << "\":";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  *out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out_ << buf;
  } else {
    *out_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::size_t v) {
  before_value();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  *out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  *out_ << "null";
  return *this;
}

bool JsonWriter::complete() const {
  return stack_.empty() && wrote_root_ && !expecting_value_;
}

}  // namespace dptd
