// Lightweight runtime-check macros and error types used across dptd.
//
// Conventions (per C++ Core Guidelines E.* / I.*):
//  - Constructor/config misuse throws std::invalid_argument via DPTD_REQUIRE.
//  - Internal invariant violations throw dptd::InternalError via DPTD_CHECK;
//    these indicate a bug in dptd itself, not in the caller.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dptd {

/// Thrown when an internal invariant is violated (a bug in dptd).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail_check(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "DPTD_REQUIRE") throw std::invalid_argument(os.str());
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace dptd

/// Validates caller-supplied arguments; throws std::invalid_argument.
#define DPTD_REQUIRE(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::dptd::detail::fail_check("DPTD_REQUIRE", #cond, __FILE__, __LINE__,  \
                                 (msg));                                     \
    }                                                                        \
  } while (false)

/// Validates internal invariants; throws dptd::InternalError.
#define DPTD_CHECK(cond, msg)                                                \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::dptd::detail::fail_check("DPTD_CHECK", #cond, __FILE__, __LINE__,    \
                                 (msg));                                     \
    }                                                                        \
  } while (false)
