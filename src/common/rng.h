// Deterministic, splittable pseudo-random number generation.
//
// dptd never uses std::mt19937 / std::normal_distribution on the mechanism
// path: distribution sampling is implemented manually (distributions.h) on
// top of these generators, so a seed reproduces bit-identical experiments on
// every platform.
#pragma once

#include <array>
#include <cstdint>

namespace dptd {

/// SplitMix64 (Steele/Lea/Flood). Used for seeding and cheap stream derivation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
///
/// Satisfies std::uniform_random_bit_generator so it can interoperate with
/// standard algorithms, but dptd's samplers consume it directly.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64 (the reference
  /// seeding procedure recommended by the authors).
  explicit Xoshiro256StarStar(std::uint64_t seed = 0x6a09e667f3bcc908ULL) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to next(); yields non-overlapping subsequences
  /// for parallel streams.
  void jump();

  /// Derives an independent generator for a named logical stream. Used to give
  /// every simulated user its own private noise stream.
  Xoshiro256StarStar split(std::uint64_t stream_id) const;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Default generator alias used across dptd.
using Rng = Xoshiro256StarStar;

/// Hashes (seed, a, b, c) into a stream seed; convenience for experiment
/// harnesses that need per-(trial, user, parameter) reproducibility.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t a,
                          std::uint64_t b = 0, std::uint64_t c = 0);

}  // namespace dptd
