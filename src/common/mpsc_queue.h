// Bounded multi-producer queue feeding one consumer thread: a fixed-capacity
// ring buffer guarded by a mutex, with a *blocking* push (backpressure: a
// producer stalls while the ring is full instead of growing memory without
// bound) and batch dequeue so the consumer amortizes one lock acquisition
// over many items. This is the hand-off primitive of the parallel ingestion
// pipeline (crowd::IngestPipeline): the network thread pushes routed reports,
// one worker per queue drains them.
//
// FIFO is global: items pop in exactly the order pushes acquired the lock.
// With a single producer thread — the pipeline's configuration — that is the
// producer's program order, which is what makes pipelined ingestion bitwise
// identical to serial ingestion.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"

namespace dptd {

template <typename T>
class BoundedMpscQueue {
 public:
  /// `capacity` is the exact number of in-flight items tolerated before
  /// push() blocks. Must be positive.
  explicit BoundedMpscQueue(std::size_t capacity)
      : capacity_(capacity), ring_(capacity) {
    DPTD_REQUIRE(capacity > 0, "BoundedMpscQueue: capacity must be positive");
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tail_ - head_;
  }

  /// Enqueues without blocking; returns false when the ring is full or the
  /// queue is closed.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || tail_ - head_ == capacity_) return false;
      ring_[tail_ % capacity_] = std::move(item);
      ++tail_;
    }
    cv_not_empty_.notify_one();
    return true;
  }

  /// Enqueues, blocking while the ring is full (the pipeline's backpressure).
  /// Returns false only if the queue was closed (shutdown) before space
  /// opened up; the item is dropped in that case.
  bool push(T&& item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_not_full_.wait(lock,
                        [&] { return closed_ || tail_ - head_ < capacity_; });
      if (closed_) return false;
      ring_[tail_ % capacity_] = std::move(item);
      ++tail_;
    }
    cv_not_empty_.notify_one();
    return true;
  }

  /// Moves up to `max` items into `out` (appended) without blocking.
  /// Returns the number popped.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t popped = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      popped = take_locked(out, max);
    }
    if (popped > 0) cv_not_full_.notify_all();
    return popped;
  }

  /// Blocks until at least one item is available or the queue is closed,
  /// then moves up to `max` items into `out` (appended). Returns 0 only on
  /// [closed and empty] — the consumer's exit signal.
  std::size_t wait_pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_not_empty_.wait(lock, [&] { return closed_ || tail_ != head_; });
      popped = take_locked(out, max);
    }
    if (popped > 0) cv_not_full_.notify_all();
    return popped;
  }

  /// Rejects further pushes and wakes every blocked producer and consumer.
  /// Items already enqueued remain poppable; wait_pop_batch returns 0 once
  /// they are gone.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_not_empty_.notify_all();
    cv_not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  std::size_t take_locked(std::vector<T>& out, std::size_t max) {
    const std::size_t available = tail_ - head_;
    const std::size_t n = available < max ? available : max;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(ring_[head_ % capacity_]));
      ++head_;
    }
    return n;
  }

  const std::size_t capacity_;
  std::vector<T> ring_;
  mutable std::mutex mu_;
  std::condition_variable cv_not_empty_;
  std::condition_variable cv_not_full_;
  std::size_t head_ = 0;  ///< monotone pop counter
  std::size_t tail_ = 0;  ///< monotone push counter
  bool closed_ = false;
};

}  // namespace dptd
