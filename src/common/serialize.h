// Compact binary wire format for the simulated crowd sensing protocol:
// little-endian fixed-width ints, LEB128 varints with zigzag for signed,
// IEEE-754 doubles, length-prefixed strings/vectors.
//
// Decoding is defensive: malformed input throws DecodeError, never UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace dptd {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Encoder {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_varint(std::uint64_t v);
  void write_signed_varint(std::int64_t v);  // zigzag
  void write_double(double v);
  void write_string(const std::string& s);
  void write_doubles(std::span<const double> xs);
  void write_bytes(std::span<const std::uint8_t> bytes);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t read_u8();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::uint64_t read_varint();
  std::int64_t read_signed_varint();
  double read_double();
  std::string read_string();
  std::vector<double> read_doubles();
  std::vector<std::uint8_t> read_bytes();  // mirror of write_bytes

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dptd
