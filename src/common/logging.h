// Minimal leveled logger. Thread-safe, writes to stderr; level settable via
// code or the DPTD_LOG_LEVEL environment variable (trace|debug|info|warn|
// error|off).
#pragma once

#include <sstream>
#include <string>

namespace dptd {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "info" etc.; unknown strings map to kInfo.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// RAII line builder: LogLine(LogLevel::kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::log_emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace dptd

#define DPTD_LOG_TRACE ::dptd::LogLine(::dptd::LogLevel::kTrace)
#define DPTD_LOG_DEBUG ::dptd::LogLine(::dptd::LogLevel::kDebug)
#define DPTD_LOG_INFO ::dptd::LogLine(::dptd::LogLevel::kInfo)
#define DPTD_LOG_WARN ::dptd::LogLine(::dptd::LogLevel::kWarn)
#define DPTD_LOG_ERROR ::dptd::LogLine(::dptd::LogLevel::kError)
