// Tiny declarative command-line parser for examples and benches.
// Supports --flag, --key=value and --key value forms plus --help generation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dptd {

class CliParser {
 public:
  explicit CliParser(std::string program_description)
      : description_(std::move(program_description)) {}

  /// Registers an option with a default; returns *this for chaining.
  CliParser& add_flag(const std::string& name, const std::string& help);
  CliParser& add_int(const std::string& name, std::int64_t default_value,
                     const std::string& help);
  CliParser& add_double(const std::string& name, double default_value,
                        const std::string& help);
  CliParser& add_string(const std::string& name,
                        const std::string& default_value,
                        const std::string& help);

  /// Parses argv. Returns false if --help was requested (help printed to
  /// stdout). Throws std::invalid_argument on unknown/malformed options.
  bool parse(int argc, const char* const* argv);

  bool flag(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  std::string help_text() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind = Kind::kFlag;
    std::string help;
    bool flag_value = false;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  const Option& find(const std::string& name, Kind kind) const;
  Option& find(const std::string& name, Kind kind);

  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace dptd
