#include "common/cli.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace dptd {
namespace {

bool parse_int(const std::string& s, std::int64_t& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(s, &pos);
    return pos == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_double(const std::string& s, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

CliParser& CliParser::add_flag(const std::string& name,
                               const std::string& help) {
  DPTD_REQUIRE(!options_.count(name), "duplicate option: " + name);
  Option o;
  o.kind = Kind::kFlag;
  o.help = help;
  options_[name] = o;
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::add_int(const std::string& name,
                              std::int64_t default_value,
                              const std::string& help) {
  DPTD_REQUIRE(!options_.count(name), "duplicate option: " + name);
  Option o;
  o.kind = Kind::kInt;
  o.help = help;
  o.int_value = default_value;
  options_[name] = o;
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::add_double(const std::string& name, double default_value,
                                 const std::string& help) {
  DPTD_REQUIRE(!options_.count(name), "duplicate option: " + name);
  Option o;
  o.kind = Kind::kDouble;
  o.help = help;
  o.double_value = default_value;
  options_[name] = o;
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::add_string(const std::string& name,
                                 const std::string& default_value,
                                 const std::string& help) {
  DPTD_REQUIRE(!options_.count(name), "duplicate option: " + name);
  Option o;
  o.kind = Kind::kString;
  o.help = help;
  o.string_value = default_value;
  options_[name] = o;
  order_.push_back(name);
  return *this;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    DPTD_REQUIRE(arg.rfind("--", 0) == 0, "unexpected argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    DPTD_REQUIRE(it != options_.end(), "unknown option: --" + arg);
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      DPTD_REQUIRE(!has_value, "flag --" + arg + " takes no value");
      opt.flag_value = true;
      continue;
    }
    if (!has_value) {
      DPTD_REQUIRE(i + 1 < argc, "option --" + arg + " requires a value");
      value = argv[++i];
    }
    switch (opt.kind) {
      case Kind::kInt:
        DPTD_REQUIRE(parse_int(value, opt.int_value),
                     "option --" + arg + ": expected integer, got " + value);
        break;
      case Kind::kDouble:
        DPTD_REQUIRE(parse_double(value, opt.double_value),
                     "option --" + arg + ": expected number, got " + value);
        break;
      case Kind::kString:
        opt.string_value = value;
        break;
      case Kind::kFlag:
        break;  // unreachable
    }
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  DPTD_REQUIRE(it != options_.end(), "option not registered: " + name);
  DPTD_REQUIRE(it->second.kind == kind, "option type mismatch: " + name);
  return it->second;
}

CliParser::Option& CliParser::find(const std::string& name, Kind kind) {
  return const_cast<Option&>(
      static_cast<const CliParser*>(this)->find(name, kind));
}

bool CliParser::flag(const std::string& name) const {
  return find(name, Kind::kFlag).flag_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return find(name, Kind::kInt).int_value;
}

double CliParser::get_double(const std::string& name) const {
  return find(name, Kind::kDouble).double_value;
}

const std::string& CliParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).string_value;
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << description_ << "\n\nOptions:\n";
  for (const std::string& name : order_) {
    const Option& o = options_.at(name);
    os << "  --" << name;
    switch (o.kind) {
      case Kind::kFlag:
        break;
      case Kind::kInt:
        os << "=<int> (default " << o.int_value << ")";
        break;
      case Kind::kDouble:
        os << "=<num> (default " << o.double_value << ")";
        break;
      case Kind::kString:
        os << "=<str> (default \"" << o.string_value << "\")";
        break;
    }
    os << "\n      " << o.help << "\n";
  }
  os << "  --help\n      Print this message.\n";
  return os.str();
}

}  // namespace dptd
