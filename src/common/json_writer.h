// Minimal streaming JSON writer for experiment artifacts. Supports objects,
// arrays, strings, numbers and booleans; validates nesting at runtime.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dptd {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Inside an object: writes the key; must be followed by exactly one value.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::size_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// True once all opened scopes are closed and at least one value written.
  bool complete() const;

  static std::string escape(const std::string& s);

 private:
  enum class Scope { kObject, kArray };
  void before_value();

  std::ostream* out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool expecting_value_ = false;  // set after key()
  bool wrote_root_ = false;
};

}  // namespace dptd
