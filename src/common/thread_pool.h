// Fixed-size thread pool with a parallel_for helper used by the experiment
// sweeps. Exceptions thrown by tasks are captured and rethrown to the caller
// of parallel_for (first one wins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dptd {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks may not touch the pool itself.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Runs f(i) for i in [0, n) across the pool; rethrows the first exception.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& f);

}  // namespace dptd
