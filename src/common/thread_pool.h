// Fixed-size thread pool with a parallel_for helper used by the experiment
// sweeps. Exceptions thrown by tasks are captured and rethrown to the caller
// of parallel_for (first one wins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dptd {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks may not touch the pool itself.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Runs f(i) for i in [0, n) across the pool; rethrows the first exception.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& f);

/// Splits [0, n) into contiguous shards (~4 per worker, dynamically claimed)
/// and runs f(begin, end) for each across the pool; rethrows the first
/// exception. Results are deterministic in n — independent of pool size and
/// shard scheduling — as long as f writes only to slots owned by its own
/// indices, which is how every truth-discovery kernel uses it.
void parallel_for_ranges(ThreadPool& pool, std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>& f);

/// Pool-optional entry point used by the kernels: runs f(0, n) inline when
/// `pool` is null, has a single worker, or n < min_parallel (where shard
/// dispatch overhead would dominate); otherwise uses parallel_for_ranges.
/// Deterministic under the same ownership rule as parallel_for_ranges.
void for_each_range(ThreadPool* pool, std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& f,
                    std::size_t min_parallel = 512);

}  // namespace dptd
