#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace dptd {
namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    if (const char* env = std::getenv("DPTD_LOG_LEVEL")) {
      return parse_log_level(env);
    }
    return LogLevel::kWarn;
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { level_storage().store(level); }

LogLevel log_level() { return level_storage().load(); }

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  static std::mutex mu;
  const std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[dptd %-5s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace dptd
