#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace dptd {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

RunningStats RunningStats::restore(std::size_t count, double mean, double m2,
                                   double min, double max) {
  RunningStats out;
  if (count == 0) return out;
  out.n_ = count;
  out.mean_ = mean;
  out.m2_ = m2;
  out.min_ = min;
  out.max_ = max;
  return out;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  DPTD_REQUIRE(n_ > 0, "RunningStats::mean on empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  DPTD_REQUIRE(n_ > 0, "RunningStats::min on empty accumulator");
  return min_;
}

double RunningStats::max() const {
  DPTD_REQUIRE(n_ > 0, "RunningStats::max on empty accumulator");
  return max_;
}

double mean(std::span<const double> xs) {
  DPTD_REQUIRE(!xs.empty(), "mean: empty input");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.variance();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
  DPTD_REQUIRE(!xs.empty(), "median: empty input");
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double quantile(std::span<const double> xs, double q) {
  DPTD_REQUIRE(!xs.empty(), "quantile: empty input");
  DPTD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile: q must be in [0,1]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  DPTD_REQUIRE(xs.size() == ws.size(), "weighted_mean: size mismatch");
  DPTD_REQUIRE(!xs.empty(), "weighted_mean: empty input");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    DPTD_REQUIRE(ws[i] >= 0.0, "weighted_mean: negative weight");
    num += ws[i] * xs[i];
    den += ws[i];
  }
  DPTD_REQUIRE(den > 0.0, "weighted_mean: all weights are zero");
  return num / den;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  DPTD_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
               "pearson: need >= 2 paired samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  DPTD_REQUIRE(sxx > 0.0 && syy > 0.0, "pearson: zero-variance input");
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    const double avg =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman_correlation(std::span<const double> xs,
                            std::span<const double> ys) {
  DPTD_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
               "spearman: need >= 2 paired samples");
  const std::vector<double> rx = average_ranks(xs);
  const std::vector<double> ry = average_ranks(ys);
  return pearson_correlation(rx, ry);
}

double mean_absolute_error(std::span<const double> a,
                           std::span<const double> b) {
  DPTD_REQUIRE(a.size() == b.size() && !a.empty(),
               "mean_absolute_error: size mismatch or empty");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double root_mean_squared_error(std::span<const double> a,
                               std::span<const double> b) {
  DPTD_REQUIRE(a.size() == b.size() && !a.empty(),
               "root_mean_squared_error: size mismatch or empty");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(a.size()));
}

double max_absolute_error(std::span<const double> a,
                          std::span<const double> b) {
  DPTD_REQUIRE(a.size() == b.size() && !a.empty(),
               "max_absolute_error: size mismatch or empty");
  double mx = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::abs(a[i] - b[i]));
  }
  return mx;
}

}  // namespace dptd
