// Small CSV reader/writer for dataset I/O and experiment output.
// Supports quoting, embedded commas/quotes/newlines on write; the reader
// handles quoted fields and CRLF.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dptd {

class CsvWriter {
 public:
  /// Writes to the given stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough digits to round-trip.
  void write_numeric_row(const std::vector<double>& values);

  static std::string escape(const std::string& field);
  static std::string format_double(double v);

 private:
  std::ostream* out_;
};

class CsvReader {
 public:
  /// Parses the full stream; throws std::invalid_argument on malformed input.
  static std::vector<std::vector<std::string>> parse(std::istream& in);

  /// Parses a single line (no embedded newlines).
  static std::vector<std::string> parse_line(const std::string& line);
};

}  // namespace dptd
