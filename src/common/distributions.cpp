#include "common/distributions.h"

#include <cmath>

#include "common/check.h"

namespace dptd {

double uniform01(Rng& rng) {
  // Top 53 bits -> [0, 1) with full double granularity.
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

double uniform01_open_left(Rng& rng) {
  // (0, 1]: complement of [0,1) sample.
  return 1.0 - uniform01(rng);
}

double uniform(Rng& rng, double lo, double hi) {
  DPTD_REQUIRE(lo <= hi, "uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform01(rng);
}

std::uint64_t uniform_index(Rng& rng, std::uint64_t n) {
  DPTD_REQUIRE(n > 0, "uniform_index: n must be positive");
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = rng.next();
    if (r >= threshold) return r % n;
  }
}

double standard_normal(Rng& rng) {
  // Marsaglia polar method; discards the spare for statelessness.
  for (;;) {
    const double u = 2.0 * uniform01(rng) - 1.0;
    const double v = 2.0 * uniform01(rng) - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double standard_normal_box_muller(Rng& rng) {
  const double u1 = uniform01_open_left(rng);
  const double u2 = uniform01(rng);
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double normal(Rng& rng, double mean, double stddev) {
  DPTD_REQUIRE(stddev >= 0.0, "normal: stddev must be non-negative");
  if (stddev == 0.0) return mean;
  return mean + stddev * standard_normal(rng);
}

double exponential(Rng& rng, double rate) {
  DPTD_REQUIRE(rate > 0.0, "exponential: rate must be positive");
  return -std::log(uniform01_open_left(rng)) / rate;
}

double laplace(Rng& rng, double mu, double scale) {
  DPTD_REQUIRE(scale > 0.0, "laplace: scale must be positive");
  // Inversion: u ~ U(-1/2, 1/2), X = mu - b * sgn(u) * ln(1 - 2|u|).
  const double u = uniform01(rng) - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return mu - scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double gamma(Rng& rng, double shape, double scale) {
  DPTD_REQUIRE(shape > 0.0 && scale > 0.0,
               "gamma: shape and scale must be positive");
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = uniform01_open_left(rng);
    return gamma(rng, shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = standard_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform01_open_left(rng);
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool bernoulli(Rng& rng, double p) {
  DPTD_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p must be in [0,1]");
  return uniform01(rng) < p;
}

std::size_t weighted_index(Rng& rng, const double* weights, std::size_t n) {
  DPTD_REQUIRE(n > 0, "weighted_index: empty weights");
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    DPTD_REQUIRE(weights[i] >= 0.0, "weighted_index: negative weight");
    total += weights[i];
  }
  DPTD_REQUIRE(total > 0.0, "weighted_index: all weights are zero");
  double target = uniform01(rng) * total;
  for (std::size_t i = 0; i < n; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return n - 1;  // Floating-point slack lands on the last bucket.
}

double GaussianSampler::operator()(double mean, double stddev) {
  DPTD_REQUIRE(stddev >= 0.0, "GaussianSampler: stddev must be non-negative");
  if (stddev == 0.0) return mean;
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  for (;;) {
    const double u = 2.0 * uniform01(rng_) - 1.0;
    const double v = 2.0 * uniform01(rng_) - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double m = std::sqrt(-2.0 * std::log(s) / s);
      spare_ = v * m;
      has_spare_ = true;
      return mean + stddev * (u * m);
    }
  }
}

}  // namespace dptd
