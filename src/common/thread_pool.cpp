#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/check.h"

namespace dptd {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DPTD_REQUIRE(task != nullptr, "ThreadPool::submit: null task");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    DPTD_CHECK(!stop_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& f) {
  if (n == 0) return;
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  const std::size_t workers = std::min(pool.size(), n);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          f(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_ranges(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& f) {
  if (n == 0) return;
  const std::size_t shards = std::min(n, pool.size() * 4);
  const std::size_t chunk = (n + shards - 1) / shards;
  parallel_for(pool, shards, [&](std::size_t shard) {
    const std::size_t begin = shard * chunk;
    const std::size_t end = std::min(begin + chunk, n);
    if (begin < end) f(begin, end);
  });
}

void for_each_range(ThreadPool* pool, std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& f,
                    std::size_t min_parallel) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n < min_parallel) {
    f(0, n);
    return;
  }
  parallel_for_ranges(*pool, n, f);
}

}  // namespace dptd
