#include "common/serialize.h"

#include <bit>
#include <limits>

namespace dptd {

namespace {
constexpr std::size_t kMaxContainerLength = 1u << 28;  // 256M entries: sanity cap
}

void Encoder::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::write_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Encoder::write_signed_varint(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  write_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void Encoder::write_double(double v) {
  write_u64(std::bit_cast<std::uint64_t>(v));
}

void Encoder::write_string(const std::string& s) {
  write_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::write_doubles(std::span<const double> xs) {
  write_varint(xs.size());
  for (double x : xs) write_double(x);
}

void Encoder::write_bytes(std::span<const std::uint8_t> bytes) {
  write_varint(bytes.size());
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Decoder::need(std::size_t n) const {
  if (data_.size() - pos_ < n) throw DecodeError("truncated message");
}

std::uint8_t Decoder::read_u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Decoder::read_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Decoder::read_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Decoder::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw DecodeError("varint overflow");
    need(1);
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
  }
}

std::int64_t Decoder::read_signed_varint() {
  const std::uint64_t u = read_varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

double Decoder::read_double() { return std::bit_cast<double>(read_u64()); }

std::string Decoder::read_string() {
  const std::uint64_t len = read_varint();
  if (len > kMaxContainerLength) throw DecodeError("string too long");
  need(static_cast<std::size_t>(len));
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

std::vector<std::uint8_t> Decoder::read_bytes() {
  const std::uint64_t len = read_varint();
  if (len > kMaxContainerLength) throw DecodeError("byte array too long");
  need(static_cast<std::size_t>(len));
  std::vector<std::uint8_t> bytes(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(
                                                      pos_ + static_cast<std::size_t>(len)));
  pos_ += static_cast<std::size_t>(len);
  return bytes;
}

std::vector<double> Decoder::read_doubles() {
  const std::uint64_t len = read_varint();
  if (len > kMaxContainerLength) throw DecodeError("vector too long");
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(len));
  for (std::uint64_t i = 0; i < len; ++i) xs.push_back(read_double());
  return xs;
}

}  // namespace dptd
