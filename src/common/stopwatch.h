// Wall-clock stopwatch for the efficiency experiments (Fig. 8).
#pragma once

#include <chrono>

namespace dptd {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dptd
