#include "common/special_functions.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace dptd {
namespace {

constexpr double kSqrt2 = 1.4142135623730950488016887242097;
constexpr double kInvSqrt2Pi = 0.39894228040143267793994605993438;

// Acklam's inverse normal CDF rational approximation.
double acklam(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double normal_pdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double normal_cdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double normal_quantile(double p) {
  DPTD_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile: p must be in (0,1)");
  double x = acklam(p);
  // One Halley refinement step against the true CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double regularized_gamma_p(double a, double x) {
  DPTD_REQUIRE(a > 0.0 && x >= 0.0, "regularized_gamma_p: invalid arguments");
  if (x == 0.0) return 0.0;
  constexpr int kMaxIter = 500;
  constexpr double kEps = 1e-14;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < kMaxIter; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * kEps) break;
    }
    return sum * std::exp(-x + a * std::log(x) - gln);
  }
  // Continued fraction for Q(a,x); P = 1 - Q.
  constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  const double q = std::exp(-x + a * std::log(x) - gln) * h;
  return 1.0 - q;
}

double chi_squared_quantile(double p_upper, double dof) {
  DPTD_REQUIRE(p_upper > 0.0 && p_upper < 1.0,
               "chi_squared_quantile: p must be in (0,1)");
  DPTD_REQUIRE(dof > 0.0, "chi_squared_quantile: dof must be positive");
  // Wilson–Hilferty initial guess.
  const double z = normal_quantile(1.0 - p_upper);
  const double t = 1.0 - 2.0 / (9.0 * dof) + z * std::sqrt(2.0 / (9.0 * dof));
  double x = dof * t * t * t;
  if (x <= 0.0) x = 1e-8;
  // Newton polish on P(dof/2, x/2) = 1 - p_upper.
  const double target = 1.0 - p_upper;
  const double a = dof / 2.0;
  for (int it = 0; it < 60; ++it) {
    const double f = regularized_gamma_p(a, x / 2.0) - target;
    // d/dx P(a, x/2) = (x/2)^{a-1} e^{-x/2} / (2 Gamma(a)).
    const double logpdf =
        (a - 1.0) * std::log(x / 2.0) - x / 2.0 - std::lgamma(a);
    const double fp = 0.5 * std::exp(logpdf);
    if (fp <= 0.0) break;
    const double step = f / fp;
    x -= step;
    if (x <= 0.0) x = 1e-10;
    if (std::abs(step) < 1e-12 * (1.0 + x)) break;
  }
  return x;
}

double gaussian_tail_bound(double b) {
  DPTD_REQUIRE(b > 0.0, "gaussian_tail_bound: b must be positive");
  return 2.0 * std::exp(-b * b / 2.0) / b;
}

}  // namespace dptd
