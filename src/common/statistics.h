// Descriptive statistics used throughout data generation, truth discovery and
// evaluation. All functions are missing-data agnostic: callers pass only the
// present values.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dptd {

/// Streaming mean/variance accumulator (Welford). Numerically stable.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Raw sum of squared deviations (Welford's M2) — exposed so accumulators
  /// can be serialized bit-exactly (common/serialize round trips through the
  /// IEEE-754 representation) and restored on another node.
  double sum_squared_deviations() const { return m2_; }
  /// Inverse of the accessors: rebuilds an accumulator from its serialized
  /// fields. A zero count restores the empty accumulator regardless of the
  /// other fields, so merge()'s empty fast paths behave identically.
  static RunningStats restore(std::size_t count, double mean, double m2,
                              double min, double max);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // sample variance, n-1
double stddev(std::span<const double> xs);

/// Median by nth_element (copies the input).
double median(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0,1].
double quantile(std::span<const double> xs, double q);

/// Weighted arithmetic mean; weights must be non-negative, not all zero.
double weighted_mean(std::span<const double> xs, std::span<const double> ws);

/// Pearson correlation coefficient; requires |xs| == |ys| >= 2.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

/// Spearman rank correlation (average ranks for ties).
double spearman_correlation(std::span<const double> xs,
                            std::span<const double> ys);

/// Mean absolute deviation between two equal-length vectors (the paper's MAE
/// utility metric between aggregates on original vs perturbed data).
double mean_absolute_error(std::span<const double> a,
                           std::span<const double> b);

/// Root mean squared error between two equal-length vectors.
double root_mean_squared_error(std::span<const double> a,
                               std::span<const double> b);

/// Maximum absolute componentwise difference.
double max_absolute_error(std::span<const double> a,
                          std::span<const double> b);

/// Ranks with ties averaged, 1-based; helper exposed for tests.
std::vector<double> average_ranks(std::span<const double> xs);

}  // namespace dptd
