// Special functions needed by the theory module: normal CDF / quantile,
// chi-squared quantile (for the CATD extension), and Gaussian tail bounds.
#pragma once

namespace dptd {

/// Standard normal probability density.
double normal_pdf(double x);

/// Standard normal CDF via erfc (double precision accurate).
double normal_cdf(double x);

/// Inverse standard normal CDF. Acklam's rational approximation refined by a
/// single Halley step; |error| < 1e-12 on (0,1).
double normal_quantile(double p);

/// Upper-tail quantile of the chi-squared distribution with `dof` degrees of
/// freedom at level `p` (i.e. returns x with P[X > x] = p) via the
/// Wilson–Hilferty cube approximation + Newton polish on the regularized
/// gamma CDF.
double chi_squared_quantile(double p_upper, double dof);

/// Regularized lower incomplete gamma P(a, x), by series / continued fraction
/// (Numerical Recipes style). Needed for chi-squared CDF.
double regularized_gamma_p(double a, double x);

/// One-sided Gaussian tail bound used in Lemma 4.7:
///   P[|Z| > b] <= 2 e^{-b^2/2} / b   for Z ~ N(0,1), b > 0.
double gaussian_tail_bound(double b);

}  // namespace dptd
