#include "categorical/synthetic.h"

#include <algorithm>

#include "common/check.h"
#include "common/distributions.h"
#include "common/rng.h"

namespace dptd::categorical {

LabelDataset generate_categorical(const CategoricalConfig& config) {
  DPTD_REQUIRE(config.num_users > 0 && config.num_objects > 0,
               "generate_categorical: dimensions must be positive");
  DPTD_REQUIRE(config.num_labels >= 2,
               "generate_categorical: need at least 2 labels");
  DPTD_REQUIRE(config.lambda_err > 0.0,
               "generate_categorical: lambda_err must be positive");
  DPTD_REQUIRE(config.missing_rate >= 0.0 && config.missing_rate < 1.0,
               "generate_categorical: missing_rate must be in [0,1)");

  Rng rng(config.seed);
  LabelDataset dataset;
  dataset.ground_truth.resize(config.num_objects);
  for (Label& truth : dataset.ground_truth) {
    truth = static_cast<Label>(uniform_index(rng, config.num_labels));
  }

  std::vector<double> error_probability(config.num_users);
  for (double& p : error_probability) {
    p = std::min(0.95, exponential(rng, config.lambda_err));
  }

  LabelMatrix claims(config.num_users, config.num_objects, config.num_labels);
  Rng miss_rng = rng.split(1);
  Rng claim_rng = rng.split(2);
  for (std::size_t s = 0; s < config.num_users; ++s) {
    for (std::size_t n = 0; n < config.num_objects; ++n) {
      if (config.missing_rate > 0.0 &&
          bernoulli(miss_rng, config.missing_rate)) {
        continue;
      }
      const Label truth = dataset.ground_truth[n];
      Label claim = truth;
      if (bernoulli(claim_rng, error_probability[s])) {
        const auto offset =
            1 + static_cast<Label>(uniform_index(claim_rng,
                                                 config.num_labels - 1));
        claim = static_cast<Label>((truth + offset) % config.num_labels);
      }
      claims.set(s, n, claim);
    }
  }
  for (std::size_t n = 0; n < config.num_objects; ++n) {
    if (claims.object_observation_count(n) == 0) {
      const auto s = static_cast<std::size_t>(
          uniform_index(miss_rng, config.num_users));
      claims.set(s, n, dataset.ground_truth[n]);
    }
  }
  dataset.claims = std::move(claims);
  dataset.validate();
  return dataset;
}

}  // namespace dptd::categorical
