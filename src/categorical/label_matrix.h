// Categorical claims: a user x object matrix of label ids with a
// missingness mask.
//
// EXTENSION (beyond the reproduced paper): the paper handles continuous
// data and cites its companion work (Li et al., KDD 2018 [23]) for the
// categorical case. This module provides the categorical analogue so the
// library covers both data types; DESIGN.md lists it as an extension.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace dptd::categorical {

using Label = std::uint32_t;

class LabelMatrix {
 public:
  LabelMatrix() = default;
  /// All cells start missing; labels must be < num_labels.
  LabelMatrix(std::size_t num_users, std::size_t num_objects,
              std::size_t num_labels);

  std::size_t num_users() const { return num_users_; }
  std::size_t num_objects() const { return num_objects_; }
  std::size_t num_labels() const { return num_labels_; }

  bool present(std::size_t user, std::size_t object) const;
  Label label(std::size_t user, std::size_t object) const;
  std::optional<Label> get(std::size_t user, std::size_t object) const;

  void set(std::size_t user, std::size_t object, Label label);
  void clear(std::size_t user, std::size_t object);

  std::size_t observation_count() const;
  std::size_t object_observation_count(std::size_t object) const;

  /// Applies f(user, object, label) to every present cell.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t s = 0; s < num_users_; ++s) {
      for (std::size_t n = 0; n < num_objects_; ++n) {
        if (present_[index(s, n)]) f(s, n, labels_[index(s, n)]);
      }
    }
  }

  bool operator==(const LabelMatrix& other) const = default;

 private:
  std::size_t index(std::size_t user, std::size_t object) const {
    return user * num_objects_ + object;
  }
  void check_bounds(std::size_t user, std::size_t object) const;

  std::size_t num_users_ = 0;
  std::size_t num_objects_ = 0;
  std::size_t num_labels_ = 0;
  std::vector<Label> labels_;
  std::vector<std::uint8_t> present_;
};

/// Categorical dataset with optional ground-truth labels.
struct LabelDataset {
  LabelMatrix claims;
  std::vector<Label> ground_truth;  ///< empty if unknown

  bool has_ground_truth() const { return !ground_truth.empty(); }
  void validate() const;
};

/// Fraction of objects where `estimate` matches `truth` (accuracy metric of
/// the categorical literature).
double label_accuracy(const std::vector<Label>& estimate,
                      const std::vector<Label>& truth);

}  // namespace dptd::categorical
