// Categorical claims: a sparse user x object matrix of label ids.
//
// EXTENSION (beyond the reproduced paper): the paper handles continuous
// data and cites its companion work (Li et al., KDD 2018 [23]) for the
// categorical case. This module provides the categorical analogue so the
// library covers both data types; DESIGN.md lists it as an extension.
//
// Storage mirrors data::ObservationMatrix: crowd labelling matrices are
// sparse (each user covers a fraction of the objects), so the store is one
// entry per *present* cell, dual-indexed:
//
//   - CSR-by-user: per-user rows sorted by object id, always current;
//     `user_entries(s)` is an allocation-free span over a row.
//   - CSC-by-object: contiguous (user, label) column arrays sorted by user
//     id, built lazily from the rows and cached until the next mutation.
//     `object_entries(n)` is an allocation-free view into the cache.
//
// Iteration order is identical to the historical dense layout (user-major,
// object-ascending within a user; user-ascending within an object), so
// kernels that accumulate in traversal order produce bit-identical results.
//
// Thread safety: mutations and the first indexed read are not synchronized.
// Call `ensure_object_index()` once before reading `object_entries` from
// multiple threads; after that, all const accessors are safe concurrently.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dptd::categorical {

using Label = std::uint32_t;

class LabelMatrix {
 public:
  /// One present cell as seen from a user's row.
  struct Entry {
    std::size_t object = 0;
    Label label = 0;
    bool operator==(const Entry&) const = default;
  };

  /// Column view of one object: contributing user ids and their claimed
  /// labels as parallel arrays, sorted by user id.
  struct ObjectEntries {
    std::span<const std::size_t> users;
    std::span<const Label> labels;

    std::size_t size() const { return users.size(); }
    bool empty() const { return users.empty(); }
  };

  LabelMatrix() = default;
  /// All cells start missing; labels must be < num_labels.
  LabelMatrix(std::size_t num_users, std::size_t num_objects,
              std::size_t num_labels);

  /// Adopts fully built per-user rows (the streaming builder's finalize
  /// path): each row must be sorted by object id and duplicate-free, with
  /// in-range objects and labels. Validates and derives the per-object
  /// counts in one O(nnz) pass — no dense intermediate.
  static LabelMatrix from_rows(std::vector<std::vector<Entry>> rows,
                               std::size_t num_objects,
                               std::size_t num_labels);

  std::size_t num_users() const { return num_users_; }
  std::size_t num_objects() const { return num_objects_; }
  std::size_t num_labels() const { return num_labels_; }

  bool present(std::size_t user, std::size_t object) const;
  Label label(std::size_t user, std::size_t object) const;
  std::optional<Label> get(std::size_t user, std::size_t object) const;

  void set(std::size_t user, std::size_t object, Label label);
  void clear(std::size_t user, std::size_t object);

  /// Number of present cells. O(1).
  std::size_t observation_count() const { return nnz_; }
  std::size_t user_observation_count(std::size_t user) const;
  /// Claims on `object`. O(1).
  std::size_t object_observation_count(std::size_t object) const;

  /// Present claims of `user`, sorted by object id. Allocation-free; the
  /// span is invalidated by any mutation of this user's row.
  std::span<const Entry> user_entries(std::size_t user) const;

  /// Present claims on `object`, sorted by user id. Allocation-free; builds
  /// the column index on first use (see header comment for thread safety).
  ObjectEntries object_entries(std::size_t object) const;

  /// Builds the CSC-by-object view if it is stale. Const (the cache is
  /// logically part of the matrix); call before concurrent column reads.
  void ensure_object_index() const;

  /// Applies f(user, object, label) to every present cell, user-major and
  /// object-ascending within a user (the historical dense traversal order).
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t s = 0; s < num_users_; ++s) {
      for (const Entry& e : rows_[s]) f(s, e.object, e.label);
    }
  }

  /// Logical equality: same shape/alphabet and the same present cells with
  /// the same labels (the lazily built column cache does not participate).
  bool operator==(const LabelMatrix& other) const {
    return num_users_ == other.num_users_ &&
           num_objects_ == other.num_objects_ &&
           num_labels_ == other.num_labels_ && rows_ == other.rows_;
  }

 private:
  void check_bounds(std::size_t user, std::size_t object) const;
  /// Iterator to the entry for `object` in `user`'s row, or row end.
  std::vector<Entry>::const_iterator find_in_row(std::size_t user,
                                                 std::size_t object) const;

  std::size_t num_users_ = 0;
  std::size_t num_objects_ = 0;
  std::size_t num_labels_ = 0;
  std::size_t nnz_ = 0;
  std::vector<std::vector<Entry>> rows_;    ///< CSR view, always current
  std::vector<std::size_t> object_counts_;  ///< per-object nnz, eager

  // CSC-by-object cache, rebuilt on demand after mutations.
  mutable bool object_index_built_ = false;
  mutable std::vector<std::size_t> col_offsets_;  ///< size N+1
  mutable std::vector<std::size_t> col_users_;    ///< size nnz
  mutable std::vector<Label> col_labels_;         ///< size nnz
};

/// Categorical dataset with optional ground-truth labels.
struct LabelDataset {
  LabelMatrix claims;
  std::vector<Label> ground_truth;  ///< empty if unknown

  bool has_ground_truth() const { return !ground_truth.empty(); }
  void validate() const;
};

/// Fraction of objects where `estimate` matches `truth` (accuracy metric of
/// the categorical literature).
double label_accuracy(const std::vector<Label>& estimate,
                      const std::vector<Label>& truth);

}  // namespace dptd::categorical
