// Truth discovery for categorical claims (extension module).
//
//  - MajorityVoting: quality-blind plurality per object.
//  - WeightedVoting: the CRH-style iteration on labels — weight users by
//    -log of their share of total disagreement with the current estimates,
//    then take the weighted plurality. Same two principles as Algorithm 1.
#pragma once

#include <string>
#include <vector>

#include "categorical/label_matrix.h"

namespace dptd::categorical {

struct VotingResult {
  std::vector<Label> truths;    ///< one label per object
  std::vector<double> weights;  ///< one non-negative weight per user
  std::size_t iterations = 0;
  bool converged = false;
};

/// Plurality vote per object; ties break toward the smaller label id
/// (deterministic).
VotingResult majority_vote(const LabelMatrix& claims);

struct WeightedVotingConfig {
  std::size_t max_iterations = 50;
  /// Stop when no object's estimate changed between iterations.
  double min_disagreement_fraction = 1e-12;  ///< clamp before the log
};

/// CRH-style iterative weighted voting.
VotingResult weighted_vote(const LabelMatrix& claims,
                           const WeightedVotingConfig& config = {});

}  // namespace dptd::categorical
