// Truth discovery for categorical claims (extension module).
//
//  - majority_vote: quality-blind plurality per object.
//  - weighted_vote: the CRH-style iteration on labels — weight users by
//    -log of their share of total disagreement with the current estimates,
//    then take the weighted plurality. Same two principles as Algorithm 1.
//
// Both are built on mergeable sufficient statistics in the style of
// truth/sharded_stats.h: per-object label histograms folded in canonical
// user-block order (flat within a block of plan.block_size users, block
// partials chained ascending) and per-user disagreement counts totalled by
// truth::block_chain_sum. Shard boundaries are block-aligned, so a K-shard
// run is bitwise identical to the single-shard run for any K — and the
// distributed coordinator reproduces the exact same chain over the wire.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "categorical/label_matrix.h"
#include "categorical/label_sharding.h"
#include "common/thread_pool.h"

namespace dptd::categorical {

struct VotingResult {
  std::vector<Label> truths;    ///< one label per object
  std::vector<double> weights;  ///< one non-negative weight per user
  std::size_t iterations = 0;
  bool converged = false;
};

struct WeightedVotingConfig {
  std::size_t max_iterations = 50;
  /// Stop when no object's estimate changed between iterations.
  double min_disagreement_fraction = 1e-12;  ///< clamp before the log
};

// ---------------------------------------------------------------------------
// Mergeable kernels (the sharded/distributed building blocks).
// ---------------------------------------------------------------------------

/// Adds each shard's weighted per-object label histogram into `scores`
/// (row-major num_objects x num_labels; callers pre-initialize with zeros or
/// the preceding shards' partial). Weights are indexed by *global* user id.
/// Claims are summed flat within a canonical user block and block partials
/// are chained in ascending order, so the result is bitwise identical for
/// any shard count and any `pool` size.
void fold_label_scores(const ShardedLabelMatrix& m, ThreadPool* pool,
                       std::span<const double> weights,
                       std::span<double> scores);

/// Plurality per object from a score table: argmax over labels, ties break
/// toward the smaller label id (deterministic). Objects with no support
/// (all-zero scores) resolve to label 0.
std::vector<Label> truths_from_scores(std::span<const double> scores,
                                      std::size_t num_objects,
                                      std::size_t num_labels);

/// Inverts k-RR expectation in place: with keep probability p and flip
/// probability q = (1-p)/(L-1) per other label, an observed (weighted) count
/// c_l on an object with total support W becomes (c_l - q*W) / (p - q) — the
/// unbiased estimate of the true support. The map is affine with positive
/// slope (requires p > 1/L), so per-object argmax is unchanged; the value is
/// honest support/confidence figures under LDP. p = 1 is the identity.
/// Throws std::invalid_argument for p outside (1/L, 1].
void debias_scores(std::span<double> scores, std::size_t num_objects,
                   std::size_t num_labels, double keep_probability);

/// Per-user count of claims disagreeing with `truths`. Purely per-user state
/// (no merge): each user's count comes from their own row. `disagreement` is
/// indexed by global user id and fully overwritten.
void vote_disagreement(const ShardedLabelMatrix& m, ThreadPool* pool,
                       std::span<const Label> truths,
                       std::span<double> disagreement);

/// CRH Eq. (3) on 0/1 loss: weights[s] = -log(max(d_s/total, min_fraction)).
/// Call with the block-chained total (truth::block_chain_sum over the
/// disagreement vector); total <= 0 means unanimous agreement and the caller
/// short-circuits to uniform weights.
void vote_weights_from_disagreement(std::span<const double> disagreement,
                                    double total, double min_fraction,
                                    std::span<double> weights);

// ---------------------------------------------------------------------------
// Drivers.
// ---------------------------------------------------------------------------

/// Plurality vote per object; ties break toward the smaller label id.
/// Bitwise identical for any shard count of `m` and any `pool` size.
VotingResult majority_vote(const ShardedLabelMatrix& m,
                           ThreadPool* pool = nullptr);

/// CRH-style iterative weighted voting. `warm_weights` (global user ids)
/// seeds the first aggregation when non-empty; empty seeds uniformly — a
/// warm start with all-1.0 weights is bitwise identical to a cold run.
/// `warm_truths` (one label per object) skips the initial aggregation
/// entirely and starts the iteration from the given estimates.
VotingResult weighted_vote(const ShardedLabelMatrix& m,
                           const WeightedVotingConfig& config = {},
                           ThreadPool* pool = nullptr,
                           std::span<const double> warm_weights = {},
                           std::span<const Label> warm_truths = {});

/// Convenience single-shard entry points over a flat matrix.
VotingResult majority_vote(const LabelMatrix& claims);
VotingResult weighted_vote(const LabelMatrix& claims,
                           const WeightedVotingConfig& config = {});

}  // namespace dptd::categorical
