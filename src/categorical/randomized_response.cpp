#include "categorical/randomized_response.h"

#include <cmath>

#include "common/check.h"
#include "common/distributions.h"

namespace dptd::categorical {
namespace {
constexpr std::uint64_t kEpsilonStream = 0x65707353ULL;  // "epsS"
constexpr std::uint64_t kFlipStream = 0x666c6970ULL;     // "flip"
}  // namespace

double krr_keep_probability(double epsilon, std::size_t num_labels) {
  DPTD_REQUIRE(epsilon >= 0.0, "krr: epsilon must be non-negative");
  DPTD_REQUIRE(num_labels >= 2, "krr: need at least 2 labels");
  const double boost = std::exp(epsilon);
  return boost / (boost + static_cast<double>(num_labels) - 1.0);
}

double krr_epsilon(double keep_probability, std::size_t num_labels) {
  DPTD_REQUIRE(num_labels >= 2, "krr: need at least 2 labels");
  const double k = static_cast<double>(num_labels);
  DPTD_REQUIRE(keep_probability > 1.0 / k && keep_probability < 1.0,
               "krr: keep probability must be in (1/k, 1)");
  return std::log(keep_probability * (k - 1.0) / (1.0 - keep_probability));
}

Label krr_perturb(Label truth, double keep_probability,
                  std::size_t num_labels, Rng& rng) {
  DPTD_REQUIRE(truth < num_labels, "krr: truth label out of range");
  DPTD_REQUIRE(keep_probability >= 0.0 && keep_probability <= 1.0,
               "krr: keep probability must be in [0,1]");
  if (bernoulli(rng, keep_probability)) return truth;
  // Uniform over the other k-1 labels.
  const auto offset =
      1 + static_cast<Label>(uniform_index(rng, num_labels - 1));
  return static_cast<Label>((truth + offset) % num_labels);
}

UserSampledRandomizedResponse::UserSampledRandomizedResponse(Config config)
    : config_(config) {
  DPTD_REQUIRE(config_.lambda_rr > 0.0,
               "UserSampledRandomizedResponse: lambda_rr must be positive");
}

double UserSampledRandomizedResponse::user_epsilon(std::size_t user) const {
  Rng rng(derive_seed(config_.seed, kEpsilonStream, user));
  return exponential(rng, config_.lambda_rr);
}

RandomizedResponseOutcome UserSampledRandomizedResponse::perturb(
    const LabelMatrix& original) const {
  RandomizedResponseOutcome out{
      LabelMatrix(original.num_users(), original.num_objects(),
                  original.num_labels()),
      {}};
  out.report.epsilons.resize(original.num_users());
  double keep_sum = 0.0;

  for (std::size_t s = 0; s < original.num_users(); ++s) {
    const double eps = user_epsilon(s);
    out.report.epsilons[s] = eps;
    const double keep = krr_keep_probability(eps, original.num_labels());
    keep_sum += keep;
    Rng rng(derive_seed(config_.seed, kFlipStream, s));
    // Sparse row walk (object-ascending, so set() hits the append fast path).
    // The flip stream only ever advanced on present cells, so this consumes
    // the exact same draws as the historical dense scan.
    for (const LabelMatrix::Entry& e : original.user_entries(s)) {
      const Label noisy =
          krr_perturb(e.label, keep, original.num_labels(), rng);
      out.perturbed.set(s, e.object, noisy);
      ++out.report.total_cells;
      if (noisy != e.label) ++out.report.flipped_cells;
    }
  }
  if (original.num_users() > 0) {
    out.report.mean_keep_probability =
        keep_sum / static_cast<double>(original.num_users());
  }
  return out;
}

}  // namespace dptd::categorical
