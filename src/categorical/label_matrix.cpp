#include "categorical/label_matrix.h"

#include "common/check.h"

namespace dptd::categorical {

LabelMatrix::LabelMatrix(std::size_t num_users, std::size_t num_objects,
                         std::size_t num_labels)
    : num_users_(num_users),
      num_objects_(num_objects),
      num_labels_(num_labels),
      labels_(num_users * num_objects, 0),
      present_(num_users * num_objects, 0) {
  DPTD_REQUIRE(num_users > 0 && num_objects > 0,
               "LabelMatrix: dimensions must be positive");
  DPTD_REQUIRE(num_labels >= 2, "LabelMatrix: need at least 2 labels");
}

void LabelMatrix::check_bounds(std::size_t user, std::size_t object) const {
  DPTD_REQUIRE(user < num_users_, "LabelMatrix: user out of range");
  DPTD_REQUIRE(object < num_objects_, "LabelMatrix: object out of range");
}

bool LabelMatrix::present(std::size_t user, std::size_t object) const {
  check_bounds(user, object);
  return present_[index(user, object)] != 0;
}

Label LabelMatrix::label(std::size_t user, std::size_t object) const {
  check_bounds(user, object);
  DPTD_REQUIRE(present_[index(user, object)],
               "LabelMatrix: reading a missing cell");
  return labels_[index(user, object)];
}

std::optional<Label> LabelMatrix::get(std::size_t user,
                                      std::size_t object) const {
  check_bounds(user, object);
  if (!present_[index(user, object)]) return std::nullopt;
  return labels_[index(user, object)];
}

void LabelMatrix::set(std::size_t user, std::size_t object, Label label) {
  check_bounds(user, object);
  DPTD_REQUIRE(label < num_labels_, "LabelMatrix: label out of range");
  labels_[index(user, object)] = label;
  present_[index(user, object)] = 1;
}

void LabelMatrix::clear(std::size_t user, std::size_t object) {
  check_bounds(user, object);
  present_[index(user, object)] = 0;
  labels_[index(user, object)] = 0;
}

std::size_t LabelMatrix::observation_count() const {
  std::size_t count = 0;
  for (std::uint8_t p : present_) count += p;
  return count;
}

std::size_t LabelMatrix::object_observation_count(std::size_t object) const {
  DPTD_REQUIRE(object < num_objects_, "LabelMatrix: object out of range");
  std::size_t count = 0;
  for (std::size_t s = 0; s < num_users_; ++s) {
    count += present_[index(s, object)];
  }
  return count;
}

void LabelDataset::validate() const {
  DPTD_REQUIRE(claims.num_users() > 0, "LabelDataset: empty matrix");
  if (!ground_truth.empty()) {
    DPTD_REQUIRE(ground_truth.size() == claims.num_objects(),
                 "LabelDataset: ground truth size != num objects");
    for (Label truth : ground_truth) {
      DPTD_REQUIRE(truth < claims.num_labels(),
                   "LabelDataset: ground-truth label out of range");
    }
  }
  for (std::size_t n = 0; n < claims.num_objects(); ++n) {
    DPTD_REQUIRE(claims.object_observation_count(n) > 0,
                 "LabelDataset: object with zero claims");
  }
}

double label_accuracy(const std::vector<Label>& estimate,
                      const std::vector<Label>& truth) {
  DPTD_REQUIRE(estimate.size() == truth.size() && !estimate.empty(),
               "label_accuracy: size mismatch or empty");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < estimate.size(); ++i) {
    if (estimate[i] == truth[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(estimate.size());
}

}  // namespace dptd::categorical
