#include "categorical/label_matrix.h"

#include <algorithm>

#include "common/check.h"

namespace dptd::categorical {

LabelMatrix::LabelMatrix(std::size_t num_users, std::size_t num_objects,
                         std::size_t num_labels)
    : num_users_(num_users),
      num_objects_(num_objects),
      num_labels_(num_labels),
      rows_(num_users),
      object_counts_(num_objects, 0) {
  DPTD_REQUIRE(num_users > 0 && num_objects > 0,
               "LabelMatrix: dimensions must be positive");
  DPTD_REQUIRE(num_labels >= 2, "LabelMatrix: need at least 2 labels");
}

LabelMatrix LabelMatrix::from_rows(std::vector<std::vector<Entry>> rows,
                                   std::size_t num_objects,
                                   std::size_t num_labels) {
  LabelMatrix out(rows.size(), num_objects, num_labels);
  out.rows_ = std::move(rows);
  for (const std::vector<Entry>& row : out.rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      DPTD_REQUIRE(row[i].object < num_objects,
                   "LabelMatrix::from_rows: object out of range");
      DPTD_REQUIRE(row[i].label < num_labels,
                   "LabelMatrix::from_rows: label out of range");
      DPTD_REQUIRE(i == 0 || row[i - 1].object < row[i].object,
                   "LabelMatrix::from_rows: row not sorted and unique");
      ++out.object_counts_[row[i].object];
      ++out.nnz_;
    }
  }
  return out;
}

void LabelMatrix::check_bounds(std::size_t user, std::size_t object) const {
  DPTD_REQUIRE(user < num_users_, "LabelMatrix: user out of range");
  DPTD_REQUIRE(object < num_objects_, "LabelMatrix: object out of range");
}

std::vector<LabelMatrix::Entry>::const_iterator LabelMatrix::find_in_row(
    std::size_t user, std::size_t object) const {
  const std::vector<Entry>& row = rows_[user];
  const auto it = std::lower_bound(
      row.begin(), row.end(), object,
      [](const Entry& e, std::size_t n) { return e.object < n; });
  if (it != row.end() && it->object == object) return it;
  return row.end();
}

bool LabelMatrix::present(std::size_t user, std::size_t object) const {
  check_bounds(user, object);
  return find_in_row(user, object) != rows_[user].end();
}

Label LabelMatrix::label(std::size_t user, std::size_t object) const {
  check_bounds(user, object);
  const auto it = find_in_row(user, object);
  DPTD_REQUIRE(it != rows_[user].end(), "LabelMatrix: reading a missing cell");
  return it->label;
}

std::optional<Label> LabelMatrix::get(std::size_t user,
                                      std::size_t object) const {
  check_bounds(user, object);
  const auto it = find_in_row(user, object);
  if (it == rows_[user].end()) return std::nullopt;
  return it->label;
}

void LabelMatrix::set(std::size_t user, std::size_t object, Label label) {
  check_bounds(user, object);
  DPTD_REQUIRE(label < num_labels_, "LabelMatrix: label out of range");
  std::vector<Entry>& row = rows_[user];
  // Fast path: generators and mechanisms append in ascending object order.
  if (row.empty() || row.back().object < object) {
    row.push_back({object, label});
    ++object_counts_[object];
    ++nnz_;
    object_index_built_ = false;
    return;
  }
  const auto it = std::lower_bound(
      row.begin(), row.end(), object,
      [](const Entry& e, std::size_t n) { return e.object < n; });
  if (it != row.end() && it->object == object) {
    it->label = label;  // overwrite, structure unchanged
  } else {
    row.insert(it, {object, label});
    ++object_counts_[object];
    ++nnz_;
  }
  object_index_built_ = false;
}

void LabelMatrix::clear(std::size_t user, std::size_t object) {
  check_bounds(user, object);
  std::vector<Entry>& row = rows_[user];
  const auto it = std::lower_bound(
      row.begin(), row.end(), object,
      [](const Entry& e, std::size_t n) { return e.object < n; });
  if (it == row.end() || it->object != object) return;  // already absent
  row.erase(it);
  --object_counts_[object];
  --nnz_;
  object_index_built_ = false;
}

std::size_t LabelMatrix::user_observation_count(std::size_t user) const {
  DPTD_REQUIRE(user < num_users_, "LabelMatrix: user out of range");
  return rows_[user].size();
}

std::size_t LabelMatrix::object_observation_count(std::size_t object) const {
  DPTD_REQUIRE(object < num_objects_, "LabelMatrix: object out of range");
  return object_counts_[object];
}

std::span<const LabelMatrix::Entry> LabelMatrix::user_entries(
    std::size_t user) const {
  DPTD_REQUIRE(user < num_users_, "LabelMatrix: user out of range");
  return rows_[user];
}

void LabelMatrix::ensure_object_index() const {
  if (object_index_built_) return;
  col_offsets_.assign(num_objects_ + 1, 0);
  for (std::size_t n = 0; n < num_objects_; ++n) {
    col_offsets_[n + 1] = col_offsets_[n] + object_counts_[n];
  }
  col_users_.resize(nnz_);
  col_labels_.resize(nnz_);
  // Counting sort: user-major traversal fills every column in ascending
  // user order, which is what the deterministic kernels rely on.
  std::vector<std::size_t> cursor(col_offsets_.begin(), col_offsets_.end() - 1);
  for (std::size_t s = 0; s < num_users_; ++s) {
    for (const Entry& e : rows_[s]) {
      const std::size_t k = cursor[e.object]++;
      col_users_[k] = s;
      col_labels_[k] = e.label;
    }
  }
  object_index_built_ = true;
}

LabelMatrix::ObjectEntries LabelMatrix::object_entries(
    std::size_t object) const {
  DPTD_REQUIRE(object < num_objects_, "LabelMatrix: object out of range");
  ensure_object_index();
  const std::size_t begin = col_offsets_[object];
  const std::size_t count = col_offsets_[object + 1] - begin;
  return {std::span<const std::size_t>(col_users_).subspan(begin, count),
          std::span<const Label>(col_labels_).subspan(begin, count)};
}

void LabelDataset::validate() const {
  DPTD_REQUIRE(claims.num_users() > 0, "LabelDataset: empty matrix");
  if (!ground_truth.empty()) {
    DPTD_REQUIRE(ground_truth.size() == claims.num_objects(),
                 "LabelDataset: ground truth size != num objects");
    for (Label truth : ground_truth) {
      DPTD_REQUIRE(truth < claims.num_labels(),
                   "LabelDataset: ground-truth label out of range");
    }
  }
  for (std::size_t n = 0; n < claims.num_objects(); ++n) {
    DPTD_REQUIRE(claims.object_observation_count(n) > 0,
                 "LabelDataset: object with zero claims");
  }
}

double label_accuracy(const std::vector<Label>& estimate,
                      const std::vector<Label>& truth) {
  DPTD_REQUIRE(estimate.size() == truth.size() && !estimate.empty(),
               "label_accuracy: size mismatch or empty");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < estimate.size(); ++i) {
    if (estimate[i] == truth[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(estimate.size());
}

}  // namespace dptd::categorical
