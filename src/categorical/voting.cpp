#include "categorical/voting.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "truth/sharded_stats.h"

namespace dptd::categorical {

void fold_label_scores(const ShardedLabelMatrix& m, ThreadPool* pool,
                       std::span<const double> weights,
                       std::span<double> scores) {
  const std::size_t L = m.num_labels();
  DPTD_REQUIRE(weights.size() == m.num_users(),
               "fold_label_scores: weights size != num users");
  DPTD_REQUIRE(scores.size() == m.num_objects() * L,
               "fold_label_scores: scores size != num_objects * num_labels");
  const std::size_t block_size = m.plan().block_size;
  for (std::size_t s = 0; s < m.num_shards(); ++s) {
    const LabelMatrix& shard = m.shard(s);
    const std::size_t base = m.user_base(s);
    shard.ensure_object_index();
    // Parallel across objects; shards are reduced in ascending order, so the
    // fold chain per (object, label) bin is independent of the shard count.
    for_each_range(pool, m.num_objects(), [&](std::size_t begin,
                                              std::size_t end) {
      std::vector<double> acc(L, 0.0);
      std::vector<double> seg(L, 0.0);
      for (std::size_t n = begin; n < end; ++n) {
        const auto col = shard.object_entries(n);
        if (col.empty()) continue;
        for (std::size_t v = 0; v < L; ++v) {
          acc[v] = scores[n * L + v];
          seg[v] = 0.0;
        }
        // Columns are user-ascending, so a segment ends exactly when the
        // local user id reaches the current block's end — one comparison per
        // claim, one division per segment (see truth/sharded_stats.h).
        std::size_t block = (base + col.users[0]) / block_size;
        std::size_t block_end = (block + 1) * block_size - base;
        for (std::size_t i = 0; i < col.size(); ++i) {
          const std::size_t user = col.users[i];  // shard-local id
          if (user >= block_end) {
            for (std::size_t v = 0; v < L; ++v) {
              acc[v] += seg[v];
              seg[v] = 0.0;
            }
            block = (base + user) / block_size;
            block_end = (block + 1) * block_size - base;
          }
          seg[col.labels[i]] += weights[base + user];
        }
        for (std::size_t v = 0; v < L; ++v) scores[n * L + v] = acc[v] + seg[v];
      }
    });
  }
}

std::vector<Label> truths_from_scores(std::span<const double> scores,
                                      std::size_t num_objects,
                                      std::size_t num_labels) {
  DPTD_REQUIRE(scores.size() == num_objects * num_labels,
               "truths_from_scores: scores size mismatch");
  std::vector<Label> truths(num_objects, 0);
  for (std::size_t n = 0; n < num_objects; ++n) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < num_labels; ++k) {
      if (scores[n * num_labels + k] > scores[n * num_labels + best]) best = k;
    }
    truths[n] = static_cast<Label>(best);
  }
  return truths;
}

void debias_scores(std::span<double> scores, std::size_t num_objects,
                   std::size_t num_labels, double keep_probability) {
  DPTD_REQUIRE(scores.size() == num_objects * num_labels,
               "debias_scores: scores size mismatch");
  if (keep_probability == 1.0) return;  // no perturbation, nothing to invert
  const double p = keep_probability;
  const std::size_t L = num_labels;
  DPTD_REQUIRE(p > 1.0 / static_cast<double>(L) && p <= 1.0,
               "debias_scores: keep probability must be in (1/num_labels, 1]");
  const double q = (1.0 - p) / static_cast<double>(L - 1);
  const double slope = p - q;  // positive: p > 1/L
  for (std::size_t n = 0; n < num_objects; ++n) {
    double support = 0.0;
    for (std::size_t k = 0; k < L; ++k) support += scores[n * L + k];
    for (std::size_t k = 0; k < L; ++k) {
      scores[n * L + k] = (scores[n * L + k] - q * support) / slope;
    }
  }
}

void vote_disagreement(const ShardedLabelMatrix& m, ThreadPool* pool,
                       std::span<const Label> truths,
                       std::span<double> disagreement) {
  DPTD_REQUIRE(truths.size() == m.num_objects(),
               "vote_disagreement: truths size != num objects");
  DPTD_REQUIRE(disagreement.size() == m.num_users(),
               "vote_disagreement: disagreement size != num users");
  // Purely per-user state: nothing to merge, execution order is free.
  for (std::size_t s = 0; s < m.num_shards(); ++s) {
    const LabelMatrix& shard = m.shard(s);
    const std::size_t base = m.user_base(s);
    for_each_range(pool, shard.num_users(),
                   [&](std::size_t begin, std::size_t end) {
                     for (std::size_t local = begin; local < end; ++local) {
                       double d = 0.0;
                       for (const LabelMatrix::Entry& e :
                            shard.user_entries(local)) {
                         if (e.label != truths[e.object]) d += 1.0;
                       }
                       disagreement[base + local] = d;
                     }
                   });
  }
}

void vote_weights_from_disagreement(std::span<const double> disagreement,
                                    double total, double min_fraction,
                                    std::span<double> weights) {
  DPTD_REQUIRE(weights.size() == disagreement.size(),
               "vote_weights_from_disagreement: size mismatch");
  for (std::size_t s = 0; s < disagreement.size(); ++s) {
    const double fraction = std::max(disagreement[s] / total, min_fraction);
    weights[s] = -std::log(fraction);
  }
}

VotingResult majority_vote(const ShardedLabelMatrix& m, ThreadPool* pool) {
  VotingResult result;
  result.weights.assign(m.num_users(), 1.0);
  std::vector<double> scores(m.num_objects() * m.num_labels(), 0.0);
  fold_label_scores(m, pool, result.weights, scores);
  result.truths = truths_from_scores(scores, m.num_objects(), m.num_labels());
  result.iterations = 1;
  result.converged = true;
  return result;
}

VotingResult weighted_vote(const ShardedLabelMatrix& m,
                           const WeightedVotingConfig& config, ThreadPool* pool,
                           std::span<const double> warm_weights,
                           std::span<const Label> warm_truths) {
  DPTD_REQUIRE(config.max_iterations > 0,
               "weighted_vote: max_iterations must be positive");
  DPTD_REQUIRE(config.min_disagreement_fraction > 0.0 &&
                   config.min_disagreement_fraction < 1.0,
               "weighted_vote: min_disagreement_fraction must be in (0,1)");
  DPTD_REQUIRE(warm_weights.empty() || warm_weights.size() == m.num_users(),
               "weighted_vote: warm weights size != num users");
  DPTD_REQUIRE(warm_truths.empty() || warm_truths.size() == m.num_objects(),
               "weighted_vote: warm truths size != num objects");

  VotingResult result;
  if (warm_weights.empty()) {
    result.weights.assign(m.num_users(), 1.0);
  } else {
    result.weights.assign(warm_weights.begin(), warm_weights.end());
  }
  std::vector<double> scores(m.num_objects() * m.num_labels(), 0.0);
  if (warm_truths.empty()) {
    fold_label_scores(m, pool, result.weights, scores);
    result.truths = truths_from_scores(scores, m.num_objects(), m.num_labels());
  } else {
    for (Label t : warm_truths) {
      DPTD_REQUIRE(t < m.num_labels(), "weighted_vote: warm truth label");
    }
    result.truths.assign(warm_truths.begin(), warm_truths.end());
  }

  std::vector<double> disagreement(m.num_users(), 0.0);
  for (std::size_t it = 1; it <= config.max_iterations; ++it) {
    // Weight update: disagreement count per user, CRH Eq. (3) on 0/1 loss.
    vote_disagreement(m, pool, result.truths, disagreement);
    const double total =
        truth::block_chain_sum(disagreement, m.plan().block_size);
    if (total <= 0.0) {
      // Unanimous agreement with the estimates: uniform weights, done.
      std::fill(result.weights.begin(), result.weights.end(), 1.0);
      result.iterations = it;
      result.converged = true;
      return result;
    }
    vote_weights_from_disagreement(disagreement, total,
                                   config.min_disagreement_fraction,
                                   result.weights);

    std::fill(scores.begin(), scores.end(), 0.0);
    fold_label_scores(m, pool, result.weights, scores);
    std::vector<Label> next =
        truths_from_scores(scores, m.num_objects(), m.num_labels());
    const bool unchanged = next == result.truths;
    result.truths = std::move(next);
    result.iterations = it;
    if (unchanged) {
      result.converged = true;
      break;
    }
  }
  return result;
}

VotingResult majority_vote(const LabelMatrix& claims) {
  return majority_vote(ShardedLabelMatrix::single(claims));
}

VotingResult weighted_vote(const LabelMatrix& claims,
                           const WeightedVotingConfig& config) {
  return weighted_vote(ShardedLabelMatrix::single(claims), config);
}

}  // namespace dptd::categorical
