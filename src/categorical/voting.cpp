#include "categorical/voting.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dptd::categorical {
namespace {

/// Weighted plurality per object; ties break toward the smaller label.
std::vector<Label> aggregate(const LabelMatrix& claims,
                             const std::vector<double>& weights) {
  const std::size_t N = claims.num_objects();
  const std::size_t K = claims.num_labels();
  std::vector<double> scores(N * K, 0.0);
  claims.for_each([&](std::size_t s, std::size_t n, Label l) {
    scores[n * K + l] += weights[s];
  });
  std::vector<Label> truths(N, 0);
  for (std::size_t n = 0; n < N; ++n) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < K; ++k) {
      if (scores[n * K + k] > scores[n * K + best]) best = k;
    }
    truths[n] = static_cast<Label>(best);
  }
  return truths;
}

}  // namespace

VotingResult majority_vote(const LabelMatrix& claims) {
  VotingResult result;
  result.weights.assign(claims.num_users(), 1.0);
  result.truths = aggregate(claims, result.weights);
  result.iterations = 1;
  result.converged = true;
  return result;
}

VotingResult weighted_vote(const LabelMatrix& claims,
                           const WeightedVotingConfig& config) {
  DPTD_REQUIRE(config.max_iterations > 0,
               "weighted_vote: max_iterations must be positive");
  DPTD_REQUIRE(config.min_disagreement_fraction > 0.0 &&
                   config.min_disagreement_fraction < 1.0,
               "weighted_vote: min_disagreement_fraction must be in (0,1)");

  VotingResult result;
  result.weights.assign(claims.num_users(), 1.0);
  result.truths = aggregate(claims, result.weights);

  for (std::size_t it = 1; it <= config.max_iterations; ++it) {
    // Weight update: disagreement count per user, CRH Eq. (3) on 0/1 loss.
    std::vector<double> disagreement(claims.num_users(), 0.0);
    claims.for_each([&](std::size_t s, std::size_t n, Label l) {
      if (l != result.truths[n]) disagreement[s] += 1.0;
    });
    double total = 0.0;
    for (double d : disagreement) total += d;
    if (total <= 0.0) {
      // Unanimous agreement with the estimates: uniform weights, done.
      std::fill(result.weights.begin(), result.weights.end(), 1.0);
      result.iterations = it;
      result.converged = true;
      return result;
    }
    for (std::size_t s = 0; s < claims.num_users(); ++s) {
      const double fraction = std::max(disagreement[s] / total,
                                       config.min_disagreement_fraction);
      result.weights[s] = -std::log(fraction);
    }

    std::vector<Label> next = aggregate(claims, result.weights);
    const bool unchanged = next == result.truths;
    result.truths = std::move(next);
    result.iterations = it;
    if (unchanged) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace dptd::categorical
