// Synthetic categorical workloads for the extension module: users with
// heterogeneous per-claim error probabilities (exponentially distributed
// "unreliability", mirroring the continuous generator's Exp(lambda1)
// variances).
#pragma once

#include <cstdint>

#include "categorical/label_matrix.h"

namespace dptd::categorical {

struct CategoricalConfig {
  std::size_t num_users = 150;
  std::size_t num_objects = 30;
  std::size_t num_labels = 4;
  /// Per-user error probability = min(0.95, Exp(rate lambda_err) sample);
  /// mean 1/lambda_err. Bigger lambda_err = cleaner population.
  double lambda_err = 5.0;
  double missing_rate = 0.0;
  std::uint64_t seed = 42;
};

/// Wrong claims are uniform over the other labels. Every object keeps at
/// least one claim under missingness.
LabelDataset generate_categorical(const CategoricalConfig& config);

}  // namespace dptd::categorical
