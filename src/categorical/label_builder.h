// Incremental construction of a sparse LabelMatrix, one user row at a time —
// the categorical twin of data::ObservationMatrixBuilder. Each label report
// is decoded and folded in on arrival (deduplicated by user id), so a round
// deadline only has to finalize: no burst of matrix assembly at round close,
// and no dense intermediate at any point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "categorical/label_matrix.h"

namespace dptd::categorical {

/// Builds a LabelMatrix row-by-row. Rows are ingested at most once per user
/// (re-sends are rejected, not merged), claims within a row may arrive in any
/// order and may repeat (last claim per object wins — the same semantics as
/// calling LabelMatrix::set in claim order, so a streamed matrix is bitwise
/// identical to a batch-assembled one).
///
/// The builder is reusable: finalize() moves the accumulated rows out and
/// leaves the builder empty with the same shape, ready for the next round.
class LabelMatrixBuilder {
 public:
  using Entry = LabelMatrix::Entry;

  LabelMatrixBuilder(std::size_t num_users, std::size_t num_objects,
                     std::size_t num_labels);

  std::size_t num_users() const { return num_users_; }
  std::size_t num_objects() const { return num_objects_; }
  std::size_t num_labels() const { return num_labels_; }

  /// Ingests `user`'s claims (`objects[i]` ↦ `labels[i]`). Returns false and
  /// ignores the row entirely if this user already has an ingested row.
  /// Throws std::invalid_argument for an out-of-range user, object, or
  /// label, or mismatched array lengths — callers on untrusted input (the
  /// crowd server) sanitize claims before ingesting.
  bool add_row(std::size_t user, std::span<const std::uint64_t> objects,
               std::span<const Label> labels);

  /// True if `user`'s row has been ingested since the last reset/finalize.
  bool has_row(std::size_t user) const;

  /// Number of distinct users ingested so far (the round-close signal:
  /// duplicates never inflate it).
  std::size_t rows_ingested() const { return rows_ingested_; }

  /// Present cells ingested so far.
  std::size_t observation_count() const { return nnz_; }

  /// Discards all ingested rows, keeping the shape.
  void reset();

  /// Resets AND re-shapes in place: the builder afterwards accepts users in
  /// [0, num_users), objects in [0, num_objects), and labels < num_labels,
  /// with no ingested rows. Reuses the row/flag storage where possible, so a
  /// long-lived worker serves rounds of varying shape without reallocation.
  void reshape(std::size_t num_users, std::size_t num_objects,
               std::size_t num_labels);

  /// Moves the ingested rows into a dual-indexed LabelMatrix (O(nnz), no
  /// dense pass) and resets the builder for reuse.
  LabelMatrix finalize();

 private:
  std::size_t num_users_ = 0;
  std::size_t num_objects_ = 0;
  std::size_t num_labels_ = 0;
  std::size_t nnz_ = 0;
  std::size_t rows_ingested_ = 0;
  std::vector<std::vector<Entry>> rows_;
  std::vector<char> ingested_;  ///< per-user flag (row may be legally empty)
};

}  // namespace dptd::categorical
