// k-ary randomized response with user-sampled privacy levels — the
// categorical analogue of the paper's continuous mechanism (extension).
//
// Classical k-RR keeps the true label with probability
//   p = e^eps / (e^eps + k - 1)
// and otherwise reports one of the other k-1 labels uniformly; this is
// exactly eps-LDP per report.
//
// Mirroring Algorithm 2's "each user samples his own private variance", each
// user here samples a *private* epsilon_s ~ Exp(rate lambda_rr) (the server
// releases only lambda_rr), so no party knows any user's actual flip
// probability. Heavily-flipped users end up with high disagreement and are
// down-weighted by weighted voting — the same utility story as the
// continuous mechanism.
#pragma once

#include <cstdint>

#include "categorical/label_matrix.h"
#include "common/rng.h"

namespace dptd::categorical {

/// Keep-probability of k-RR at privacy level eps.
double krr_keep_probability(double epsilon, std::size_t num_labels);

/// The eps guaranteed by a given keep probability (inverse of the above).
double krr_epsilon(double keep_probability, std::size_t num_labels);

/// One k-RR response for `truth` with keep probability p.
Label krr_perturb(Label truth, double keep_probability,
                  std::size_t num_labels, Rng& rng);

struct RandomizedResponseReport {
  std::vector<double> epsilons;  ///< private eps_s actually sampled per user
  double mean_keep_probability = 0.0;
  std::size_t flipped_cells = 0;
  std::size_t total_cells = 0;
};

struct RandomizedResponseOutcome {
  LabelMatrix perturbed;
  RandomizedResponseReport report;
};

class UserSampledRandomizedResponse {
 public:
  struct Config {
    /// Rate of the exponential distribution user privacy levels are drawn
    /// from; mean eps = 1/lambda_rr. Smaller lambda_rr = weaker privacy =
    /// fewer flips.
    double lambda_rr = 0.5;
    std::uint64_t seed = 77;
  };

  explicit UserSampledRandomizedResponse(Config config);

  RandomizedResponseOutcome perturb(const LabelMatrix& original) const;

  /// The eps the given user samples under this mechanism seed.
  double user_epsilon(std::size_t user) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace dptd::categorical
