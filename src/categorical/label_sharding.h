// User-sharded view of a LabelMatrix — the categorical twin of
// data::ShardedMatrix. Users are grouped into the same canonical blocks
// (data::ShardPlan), blocks are split contiguously across K shards, and each
// shard owns the sub-matrix of its users' rows (local user ids, global
// object ids).
//
// The block structure — not the shard count — defines the reduction order of
// every mergeable voting statistic (see categorical/voting.h), so a K-shard
// run is bitwise identical to the single-shard run for any K that uses the
// same block size.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "categorical/label_matrix.h"
#include "data/sharding.h"

namespace dptd::categorical {

/// K per-user-range sub-matrices behind one logical S×N label matrix. Shard i
/// holds the rows of global users [plan.user_begin(i), plan.user_end(i))
/// under local ids starting at 0; objects are not partitioned. Movable, not
/// copyable (a single-shard view may borrow the underlying matrix).
class ShardedLabelMatrix {
 public:
  /// Single-shard view over an existing matrix — no copy; the view must not
  /// outlive `claims`. This is the canonical reference every K-shard run is
  /// bitwise compared against.
  static ShardedLabelMatrix single(
      const LabelMatrix& claims,
      std::size_t block_size = data::kDefaultStatsBlockSize);

  /// Partitions a copy of `claims` into `num_shards` owned sub-matrices.
  static ShardedLabelMatrix partition(
      const LabelMatrix& claims, std::size_t num_shards,
      std::size_t block_size = data::kDefaultStatsBlockSize);

  /// Adopts pre-built shard sub-matrices (the sharded server's ingestion
  /// path). `shards[i]` must have exactly plan.shard_num_users(i) users,
  /// `num_objects` objects, and `num_labels` labels; throws
  /// std::invalid_argument otherwise.
  static ShardedLabelMatrix from_shards(const data::ShardPlan& plan,
                                        std::vector<LabelMatrix> shards,
                                        std::size_t num_objects,
                                        std::size_t num_labels);

  ShardedLabelMatrix(ShardedLabelMatrix&&) = default;
  ShardedLabelMatrix& operator=(ShardedLabelMatrix&&) = default;
  ShardedLabelMatrix(const ShardedLabelMatrix&) = delete;
  ShardedLabelMatrix& operator=(const ShardedLabelMatrix&) = delete;

  const data::ShardPlan& plan() const { return plan_; }
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t num_users() const { return plan_.num_users; }
  std::size_t num_objects() const { return num_objects_; }
  std::size_t num_labels() const { return num_labels_; }
  std::size_t observation_count() const;

  const LabelMatrix& shard(std::size_t i) const { return *shards_[i]; }
  /// Global id of shard i's first user (its local user 0).
  std::size_t user_base(std::size_t i) const { return plan_.user_begin(i); }

  /// Row of a *global* user id, routed to the owning shard. Allocation-free.
  std::span<const LabelMatrix::Entry> user_row(std::size_t user) const;

  /// Claims on `object` summed across shards. O(num_shards).
  std::size_t object_observation_count(std::size_t object) const;

  /// Rebuilds the full unsharded matrix (tests and generic fallbacks).
  LabelMatrix concatenated() const;

 private:
  ShardedLabelMatrix() = default;

  data::ShardPlan plan_;
  std::size_t num_objects_ = 0;
  std::size_t num_labels_ = 0;
  std::vector<LabelMatrix> owned_;
  std::vector<const LabelMatrix*> shards_;
};

}  // namespace dptd::categorical
