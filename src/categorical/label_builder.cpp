#include "categorical/label_builder.h"

#include <algorithm>

#include "common/check.h"

namespace dptd::categorical {

LabelMatrixBuilder::LabelMatrixBuilder(std::size_t num_users,
                                       std::size_t num_objects,
                                       std::size_t num_labels)
    : num_users_(num_users),
      num_objects_(num_objects),
      num_labels_(num_labels),
      rows_(num_users),
      ingested_(num_users, 0) {
  DPTD_REQUIRE(num_users > 0 && num_objects > 0,
               "LabelMatrixBuilder: dimensions must be positive");
  DPTD_REQUIRE(num_labels >= 2, "LabelMatrixBuilder: need at least 2 labels");
}

bool LabelMatrixBuilder::add_row(std::size_t user,
                                 std::span<const std::uint64_t> objects,
                                 std::span<const Label> labels) {
  DPTD_REQUIRE(user < num_users_, "LabelMatrixBuilder: user out of range");
  DPTD_REQUIRE(objects.size() == labels.size(),
               "LabelMatrixBuilder: objects/labels size mismatch");
  if (ingested_[user]) return false;

  std::vector<Entry>& row = rows_[user];
  row.reserve(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto object = static_cast<std::size_t>(objects[i]);
    DPTD_REQUIRE(object < num_objects_,
                 "LabelMatrixBuilder: object out of range");
    DPTD_REQUIRE(labels[i] < num_labels_,
                 "LabelMatrixBuilder: label out of range");
    // Same insertion scheme as LabelMatrix::set, so a streamed row is bitwise
    // identical to a batch-assembled one: ascending append fast path,
    // otherwise sorted insert with last-claim-wins overwrite.
    if (row.empty() || row.back().object < object) {
      row.push_back({object, labels[i]});
      ++nnz_;
      continue;
    }
    const auto it = std::lower_bound(
        row.begin(), row.end(), object,
        [](const Entry& e, std::size_t n) { return e.object < n; });
    if (it != row.end() && it->object == object) {
      it->label = labels[i];
    } else {
      row.insert(it, {object, labels[i]});
      ++nnz_;
    }
  }
  ingested_[user] = 1;
  ++rows_ingested_;
  return true;
}

bool LabelMatrixBuilder::has_row(std::size_t user) const {
  DPTD_REQUIRE(user < num_users_, "LabelMatrixBuilder: user out of range");
  return ingested_[user] != 0;
}

void LabelMatrixBuilder::reshape(std::size_t num_users, std::size_t num_objects,
                                 std::size_t num_labels) {
  DPTD_REQUIRE(num_users > 0 && num_objects > 0,
               "LabelMatrixBuilder: dimensions must be positive");
  DPTD_REQUIRE(num_labels >= 2, "LabelMatrixBuilder: need at least 2 labels");
  num_users_ = num_users;
  num_objects_ = num_objects;
  num_labels_ = num_labels;
  rows_.resize(num_users_);
  for (std::vector<Entry>& row : rows_) row.clear();
  ingested_.assign(num_users_, 0);
  nnz_ = 0;
  rows_ingested_ = 0;
}

void LabelMatrixBuilder::reset() {
  rows_.assign(num_users_, {});
  ingested_.assign(num_users_, 0);
  nnz_ = 0;
  rows_ingested_ = 0;
}

LabelMatrix LabelMatrixBuilder::finalize() {
  LabelMatrix out =
      LabelMatrix::from_rows(std::move(rows_), num_objects_, num_labels_);
  reset();
  return out;
}

}  // namespace dptd::categorical
