#include "categorical/label_sharding.h"

#include "common/check.h"

namespace dptd::categorical {

ShardedLabelMatrix ShardedLabelMatrix::single(const LabelMatrix& claims,
                                              std::size_t block_size) {
  ShardedLabelMatrix out;
  out.plan_ = data::ShardPlan::create(claims.num_users(), 1, block_size);
  out.num_objects_ = claims.num_objects();
  out.num_labels_ = claims.num_labels();
  out.shards_.push_back(&claims);
  return out;
}

ShardedLabelMatrix ShardedLabelMatrix::partition(const LabelMatrix& claims,
                                                 std::size_t num_shards,
                                                 std::size_t block_size) {
  const data::ShardPlan plan =
      data::ShardPlan::create(claims.num_users(), num_shards, block_size);
  std::vector<LabelMatrix> shards;
  shards.reserve(plan.num_shards);
  for (std::size_t i = 0; i < plan.num_shards; ++i) {
    std::vector<std::vector<LabelMatrix::Entry>> rows(plan.shard_num_users(i));
    for (std::size_t local = 0; local < rows.size(); ++local) {
      const auto row = claims.user_entries(plan.user_begin(i) + local);
      rows[local].assign(row.begin(), row.end());
    }
    shards.push_back(LabelMatrix::from_rows(
        std::move(rows), claims.num_objects(), claims.num_labels()));
  }
  return from_shards(plan, std::move(shards), claims.num_objects(),
                     claims.num_labels());
}

ShardedLabelMatrix ShardedLabelMatrix::from_shards(
    const data::ShardPlan& plan, std::vector<LabelMatrix> shards,
    std::size_t num_objects, std::size_t num_labels) {
  DPTD_REQUIRE(plan == data::ShardPlan::create(plan.num_users, plan.num_shards,
                                               plan.block_size),
               "ShardedLabelMatrix: plan is not normalized");
  DPTD_REQUIRE(shards.size() == plan.num_shards,
               "ShardedLabelMatrix: shard count does not match the plan");
  for (std::size_t i = 0; i < shards.size(); ++i) {
    DPTD_REQUIRE(shards[i].num_users() == plan.shard_num_users(i),
                 "ShardedLabelMatrix: shard user count does not match plan");
    DPTD_REQUIRE(shards[i].num_objects() == num_objects,
                 "ShardedLabelMatrix: shard object count mismatch");
    DPTD_REQUIRE(shards[i].num_labels() == num_labels,
                 "ShardedLabelMatrix: shard label count mismatch");
  }
  ShardedLabelMatrix out;
  out.plan_ = plan;
  out.num_objects_ = num_objects;
  out.num_labels_ = num_labels;
  out.owned_ = std::move(shards);
  out.shards_.reserve(out.owned_.size());
  for (const LabelMatrix& m : out.owned_) out.shards_.push_back(&m);
  return out;
}

std::size_t ShardedLabelMatrix::observation_count() const {
  std::size_t total = 0;
  for (const LabelMatrix* m : shards_) total += m->observation_count();
  return total;
}

std::span<const LabelMatrix::Entry> ShardedLabelMatrix::user_row(
    std::size_t user) const {
  DPTD_REQUIRE(user < num_users(), "ShardedLabelMatrix: user out of range");
  const std::size_t s = plan_.shard_of_user(user);
  return shards_[s]->user_entries(user - plan_.user_begin(s));
}

std::size_t ShardedLabelMatrix::object_observation_count(
    std::size_t object) const {
  std::size_t total = 0;
  for (const LabelMatrix* m : shards_) {
    total += m->object_observation_count(object);
  }
  return total;
}

LabelMatrix ShardedLabelMatrix::concatenated() const {
  std::vector<std::vector<LabelMatrix::Entry>> rows(num_users());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::size_t base = user_base(i);
    for (std::size_t local = 0; local < shards_[i]->num_users(); ++local) {
      const auto row = shards_[i]->user_entries(local);
      rows[base + local].assign(row.begin(), row.end());
    }
  }
  return LabelMatrix::from_rows(std::move(rows), num_objects_, num_labels_);
}

}  // namespace dptd::categorical
